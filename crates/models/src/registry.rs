//! Named model slots with atomic hot-swap for serving.
//!
//! A [`ModelRegistry`] maps names to shared-ownership models. Publishing a
//! new model into an existing slot is an **atomic hot-swap**: readers that
//! grabbed the old [`Arc`] keep serving it untouched, new sessions see the
//! new weights, and the old model is dropped when its last session drops.
//! Each publish bumps the slot's generation counter, which
//! [`RegistrySession`] polls to lazily rebuild its serving session after a
//! swap — the serving loop never blocks on a weight reload.
//!
//! Combined with [`qn_nn::checkpoint`] this gives zero-downtime weight
//! updates: load a checkpoint into a fresh model (zero-copy via
//! [`LoadMode::Mapped`](qn_nn::LoadMode)), then [`publish`] it over the
//! running slot.
//!
//! # Concurrency contract
//!
//! The registry is a single `RwLock` over the name → slot map, and **the
//! lock is only ever held for map access** — never while running a model,
//! walking its parameters, or loading weights. The rules callers can rely
//! on:
//!
//! - **`publish` is atomic.** Readers observe either the old or the new
//!   `Arc` for a slot, never a torn state; the generation counter bumps in
//!   the same critical section, so `generation() == g` implies a subsequent
//!   `get()` returns the model of generation ≥ `g`.
//! - **`retire` never stops in-flight work.** It removes the slot from the
//!   map; sessions (and any caller of `get`) that already hold the `Arc`
//!   keep serving it, and the model is dropped when its last handle drops.
//!   A retired name simply stops resolving for *new* sessions.
//! - **Publishing must not block serving.** Build and load the new model
//!   *before* calling `publish` (the write lock is then held only for a
//!   pointer swap — sub-microsecond, measured in `BENCH_load.json`).
//!   Never construct models inside a closure that holds registry state.
//! - **Read-side introspection is lock-light.** [`names`],
//!   [`generation`](ModelRegistry::generation), [`info`] and [`snapshot`]
//!   clone the `Arc`s under the read lock and do any expensive work
//!   (parameter walks) *after* releasing it, so a `/metrics` scrape can
//!   never stall a concurrent publish for longer than a map read.
//!
//! [`publish`]: ModelRegistry::publish
//! [`names`]: ModelRegistry::names
//! [`info`]: ModelRegistry::info
//! [`snapshot`]: ModelRegistry::snapshot
//!
//! # Example
//!
//! ```
//! use qn_models::{ModelRegistry, RegistrySession};
//! use qn_nn::{Linear, Module};
//! use qn_tensor::{Rng, Tensor};
//! use std::sync::Arc;
//!
//! let registry = ModelRegistry::new();
//! let mut rng = Rng::seed_from(0);
//! registry.publish("clf", Arc::new(Linear::new(4, 2, true, &mut rng)));
//!
//! let mut session = registry.session("clf").unwrap();
//! let before = session.predict(&Tensor::ones(&[4]));
//!
//! // hot-swap: publish retrained weights; the session picks them up
//! registry.publish("clf", Arc::new(Linear::new(4, 2, true, &mut rng)));
//! let after = session.predict(&Tensor::ones(&[4]));
//! assert!(!before.bit_identical(&after));
//! ```

use crate::InferenceSession;
use qn_nn::Module;
use qn_tensor::Tensor;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A published model plus its generation.
struct Slot {
    model: Arc<dyn Module>,
    generation: u64,
}

/// Thread-safe name → model map with atomically hot-swappable slots.
#[derive(Default)]
pub struct ModelRegistry {
    slots: RwLock<HashMap<String, Slot>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            slots: RwLock::new(HashMap::new()),
        }
    }

    /// Publishes `model` under `name`, replacing any previous model in one
    /// atomic swap, and returns the slot's new generation (1 for a fresh
    /// slot). In-flight sessions keep serving the model they hold; new and
    /// refreshed sessions see this one.
    pub fn publish(&self, name: &str, model: Arc<dyn Module>) -> u64 {
        let mut slots = self.slots.write().expect("registry lock poisoned");
        match slots.get_mut(name) {
            Some(slot) => {
                slot.generation += 1;
                slot.model = model;
                slot.generation
            }
            None => {
                slots.insert(
                    name.to_string(),
                    Slot {
                        model,
                        generation: 1,
                    },
                );
                1
            }
        }
    }

    /// Removes a slot, returning its model if it existed. Sessions already
    /// holding the model keep working.
    pub fn retire(&self, name: &str) -> Option<Arc<dyn Module>> {
        let mut slots = self.slots.write().expect("registry lock poisoned");
        slots.remove(name).map(|s| s.model)
    }

    /// A shared handle to the current model under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Module>> {
        let slots = self.slots.read().expect("registry lock poisoned");
        slots.get(name).map(|s| Arc::clone(&s.model))
    }

    /// The slot's current generation (bumped on every publish).
    pub fn generation(&self, name: &str) -> Option<u64> {
        let slots = self.slots.read().expect("registry lock poisoned");
        slots.get(name).map(|s| s.generation)
    }

    /// All slot names, sorted.
    pub fn names(&self) -> Vec<String> {
        let slots = self.slots.read().expect("registry lock poisoned");
        let mut names: Vec<String> = slots.keys().cloned().collect();
        names.sort();
        names
    }

    /// Read-side introspection for one slot: generation, live handle count
    /// and parameter statistics. The registry lock is held only to clone
    /// the `Arc`; the parameter walk happens after it is released (see the
    /// module-level concurrency contract). Returns `None` for an unknown
    /// name.
    pub fn info(&self, name: &str) -> Option<SlotInfo> {
        let (model, generation) = {
            let slots = self.slots.read().expect("registry lock poisoned");
            let slot = slots.get(name)?;
            (Arc::clone(&slot.model), slot.generation)
        };
        Some(SlotInfo::collect(name, generation, &model))
    }

    /// [`info`](ModelRegistry::info) for every slot, sorted by name. One
    /// read-lock acquisition for the whole map; parameter walks run
    /// lock-free afterwards — this is what a `/metrics` endpoint should
    /// call.
    pub fn snapshot(&self) -> Vec<SlotInfo> {
        let handles: Vec<(String, u64, Arc<dyn Module>)> = {
            let slots = self.slots.read().expect("registry lock poisoned");
            let mut hs: Vec<_> = slots
                .iter()
                .map(|(name, slot)| (name.clone(), slot.generation, Arc::clone(&slot.model)))
                .collect();
            hs.sort_by(|a, b| a.0.cmp(&b.0));
            hs
        };
        handles
            .into_iter()
            .map(|(name, generation, model)| SlotInfo::collect(&name, generation, &model))
            .collect()
    }

    /// Opens a generation-tracking serving session on a slot. Returns
    /// `None` for an unknown name.
    pub fn session<'r>(&'r self, name: &str) -> Option<RegistrySession<'r>> {
        let (model, generation) = {
            let slots = self.slots.read().expect("registry lock poisoned");
            let slot = slots.get(name)?;
            (Arc::clone(&slot.model), slot.generation)
        };
        Some(RegistrySession {
            registry: self,
            name: name.to_string(),
            generation,
            session: InferenceSession::owned(model),
        })
    }
}

/// Read-side snapshot of one registry slot (see [`ModelRegistry::info`] /
/// [`ModelRegistry::snapshot`]): everything a metrics endpoint or router
/// wants to report about a published model, collected without holding the
/// registry lock during the parameter walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotInfo {
    /// Slot name.
    pub name: String,
    /// Generation at snapshot time (bumped on every publish).
    pub generation: u64,
    /// Handles to this model generation held **outside** the registry
    /// (sessions, routers, …) at snapshot time. Racy by nature — a handle
    /// may be cloned or dropped the instant after — so treat it as a gauge,
    /// not an invariant.
    pub live_handles: usize,
    /// Number of trainable parameter tensors.
    pub params: usize,
    /// Total trainable parameter elements (f32 count).
    pub param_elems: usize,
    /// Parameters whose storage is a mapped checkpoint window
    /// (zero-copy loaded via `LoadMode::Mapped`).
    pub mapped_params: usize,
    /// Weight storage dtype reported by the model (`"f32"`, or `"int8"`
    /// when any quantized layer is present — see
    /// [`Module::weight_dtype`](qn_nn::Module::weight_dtype)).
    pub weight_dtype: &'static str,
}

impl SlotInfo {
    fn collect(name: &str, generation: u64, model: &Arc<dyn Module>) -> SlotInfo {
        struct Census {
            params: usize,
            param_elems: usize,
            mapped_params: usize,
        }
        impl qn_nn::ParamVisitor for Census {
            fn param(&mut self, _name: &str, p: &qn_autograd::Parameter) {
                self.params += 1;
                self.param_elems += p.numel();
                if p.is_mapped() {
                    self.mapped_params += 1;
                }
            }
        }
        let mut census = Census {
            params: 0,
            param_elems: 0,
            mapped_params: 0,
        };
        model.visit_params(&mut census);
        // strong_count sees the registry's own Arc plus the clone this
        // snapshot holds; everything beyond those two is an outside handle.
        let live_handles = Arc::strong_count(model).saturating_sub(2);
        SlotInfo {
            name: name.to_string(),
            generation,
            live_handles,
            params: census.params,
            param_elems: census.param_elems,
            mapped_params: census.mapped_params,
            weight_dtype: model.weight_dtype(),
        }
    }
}

/// An [`InferenceSession`] bound to a registry slot: before every request
/// it compares its generation against the slot's and rebuilds the session
/// when a newer model was published (cheap check, no lock while serving).
pub struct RegistrySession<'r> {
    registry: &'r ModelRegistry,
    name: String,
    generation: u64,
    session: InferenceSession<'static>,
}

impl RegistrySession<'_> {
    /// The generation of the model this session currently serves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Picks up a newer published model if there is one. Returns `true`
    /// when the session was rebuilt. Called implicitly by
    /// [`RegistrySession::predict`] / [`predict_batch`]; call it directly
    /// to control when the swap cost (a fresh arena) is paid.
    ///
    /// If the slot was retired, the session keeps serving the model it
    /// already holds.
    ///
    /// [`predict_batch`]: RegistrySession::predict_batch
    pub fn refresh(&mut self) -> bool {
        match self.registry.generation(&self.name) {
            Some(generation) if generation != self.generation => {
                let model = self
                    .registry
                    .get(&self.name)
                    .expect("slot exists at this generation");
                self.session = InferenceSession::owned(model);
                self.generation = generation;
                true
            }
            _ => false,
        }
    }

    /// [`InferenceSession::predict`] against the latest published model.
    ///
    /// # Panics
    ///
    /// Panics if the sample's shape does not fit the model.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        self.refresh();
        self.session.predict(x)
    }

    /// [`InferenceSession::predict_batch`] against the latest published
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the batch's shape does not fit the model.
    pub fn predict_batch(&mut self, x: &Tensor) -> Tensor {
        self.refresh();
        self.session.predict_batch(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NeuronPlacement, ResNet, ResNetConfig};
    use qn_core::NeuronSpec;
    use qn_nn::{checkpoint, Linear, LoadMode};
    use qn_tensor::Rng;

    fn tiny_net(seed: u64) -> ResNet {
        ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
            placement: NeuronPlacement::All,
            seed,
        })
    }

    #[test]
    fn publish_and_get_roundtrip() {
        let reg = ModelRegistry::new();
        assert!(reg.get("missing").is_none());
        let mut rng = Rng::seed_from(0);
        assert_eq!(
            reg.publish("a", Arc::new(Linear::new(2, 2, false, &mut rng))),
            1
        );
        assert_eq!(
            reg.publish("a", Arc::new(Linear::new(2, 2, false, &mut rng))),
            2
        );
        assert_eq!(reg.generation("a"), Some(2));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        assert!(reg.get("a").is_some());
        assert!(reg.retire("a").is_some());
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn info_and_snapshot_report_without_blocking() {
        let reg = ModelRegistry::new();
        assert!(reg.info("missing").is_none());
        assert!(reg.snapshot().is_empty());
        let mut rng = Rng::seed_from(3);
        reg.publish("lin", Arc::new(Linear::new(4, 2, true, &mut rng)));
        reg.publish("net", Arc::new(tiny_net(1)));

        let info = reg.info("lin").expect("published");
        assert_eq!(info.name, "lin");
        assert_eq!(info.generation, 1);
        assert_eq!(info.params, 2); // weight + bias
        assert_eq!(info.param_elems, 4 * 2 + 2);
        assert_eq!(info.mapped_params, 0);
        assert_eq!(info.live_handles, 0);

        // an outstanding session holds a handle; the gauge sees it
        let session = reg.session("lin").expect("slot exists");
        assert_eq!(reg.info("lin").expect("published").live_handles, 1);
        drop(session);
        assert_eq!(reg.info("lin").expect("published").live_handles, 0);

        let snap = reg.snapshot();
        assert_eq!(
            snap.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["lin", "net"],
            "snapshot is name-sorted"
        );
        assert!(snap[1].param_elems > snap[0].param_elems);

        // a mmap-loaded model reports its mapped parameter census
        let path = std::env::temp_dir().join("qn_registry_info.qnckpt");
        checkpoint::save_module(&tiny_net(1), &[], &path).expect("save");
        let reloaded = tiny_net(2);
        checkpoint::load_module(&reloaded, &path, LoadMode::Mapped).expect("load");
        reg.publish("net", Arc::new(reloaded));
        let info = reg.info("net").expect("published");
        assert_eq!(info.generation, 2);
        assert!(info.mapped_params > 0, "mapped census must see mmap params");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn info_reports_weight_dtype_for_quantized_slots() {
        let reg = ModelRegistry::new();
        let net = tiny_net(6);
        reg.publish("f32", Arc::new(tiny_net(6)));
        assert_eq!(reg.info("f32").expect("published").weight_dtype, "f32");

        // publish the int8 twin into its own slot and serve from it
        let twin: Arc<dyn Module> = Arc::from(net.quantized().expect("ResNet quantizes"));
        reg.publish("int8", twin);
        assert_eq!(reg.info("int8").expect("published").weight_dtype, "int8");

        let mut f32_session = reg.session("f32").expect("slot exists");
        let mut q_session = reg.session("int8").expect("slot exists");
        let mut rng = Rng::seed_from(13);
        let x = Tensor::randn(&[3, 16, 16], &mut rng);
        let exact = f32_session.predict(&x);
        let quant = q_session.predict(&x);
        assert_eq!(exact.shape().dims(), quant.shape().dims());
        let drift = exact
            .data()
            .iter()
            .zip(quant.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(drift < 0.5, "registry-served int8 drift {drift}");
    }

    #[test]
    fn hot_swap_changes_session_outputs() {
        let reg = ModelRegistry::new();
        reg.publish("net", Arc::new(tiny_net(1)));
        let mut session = reg.session("net").unwrap();
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[3, 16, 16], &mut rng);
        let before = session.predict(&x);
        assert_eq!(session.generation(), 1);

        reg.publish("net", Arc::new(tiny_net(2)));
        let after = session.predict(&x);
        assert_eq!(session.generation(), 2);
        assert!(!before.bit_identical(&after), "new weights must serve");

        // republishing identical weights keeps outputs bit-identical
        reg.publish("net", Arc::new(tiny_net(2)));
        let again = session.predict(&x);
        assert_eq!(session.generation(), 3);
        assert!(after.bit_identical(&again));
    }

    #[test]
    fn retired_slot_keeps_serving_old_model() {
        let reg = ModelRegistry::new();
        reg.publish("net", Arc::new(tiny_net(1)));
        let mut session = reg.session("net").unwrap();
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[3, 16, 16], &mut rng);
        let before = session.predict(&x);
        reg.retire("net");
        let after = session.predict(&x);
        assert!(before.bit_identical(&after));
        assert!(reg.session("net").is_none());
    }

    #[test]
    fn checkpoint_reload_publishes_identical_model() {
        let src = tiny_net(3);
        let path = std::env::temp_dir().join("qn_registry_swap.qnckpt");
        checkpoint::save_module(&src, &[], &path).expect("save");

        let reg = ModelRegistry::new();
        reg.publish("net", Arc::new(src));
        let mut session = reg.session("net").unwrap();
        let mut rng = Rng::seed_from(11);
        let x = Tensor::randn(&[3, 16, 16], &mut rng);
        let before = session.predict(&x);

        // reload the same weights into a differently-seeded skeleton and swap
        let reloaded = tiny_net(4);
        checkpoint::load_module(&reloaded, &path, LoadMode::Mapped).expect("load");
        reg.publish("net", Arc::new(reloaded));
        let after = session.predict(&x);
        assert!(before.bit_identical(&after));
        let _ = std::fs::remove_file(&path);
    }
}
