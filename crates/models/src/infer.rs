//! Tape-free inference sessions for serving-style workloads.

use qn_autograd::{EagerExec, Exec, Var};
use qn_nn::Module;
use qn_tensor::{BufferPool, Tensor, TensorError};
use std::sync::Arc;

/// Hard upper bound on the batch dimension the validating (`try_*`) entry
/// points accept. A serving front-end must enforce this at **admission**
/// (qn-serve clamps every route's flush size to it), so a single oversized
/// request can never commit the arena to an unbounded amount of activation
/// memory. Trusted callers that really want larger batches can use the
/// panicking [`InferenceSession::predict_batch`] directly.
pub const MAX_BATCH: usize = 1024;

/// Numeric tier an [`InferenceSession`] executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision f32 weights — the model exactly as given.
    #[default]
    F32,
    /// Per-output-channel symmetric int8 weights with on-the-fly activation
    /// quantization (see `Module::quantized` in `qn-nn`). Integer
    /// accumulation is bit-identical at every SIMD level and thread count;
    /// the logits drift from f32 only by the quantization error itself.
    Int8,
}

impl Precision {
    /// Wire/metrics label: `"f32"` or `"int8"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }

    /// Parses a wire label (`"f32"` / `"int8"`).
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f32" => Some(Precision::F32),
            "int8" => Some(Precision::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The model behind a session: borrowed from the caller, or shared
/// ownership (what [`ModelRegistry`](crate::ModelRegistry) hands out so a
/// hot-swap can retire the old model only after its last session drops —
/// and what an int8 session uses for the quantized twin it owns).
/// `dyn Module` is `Send + Sync` via the trait's supertraits.
enum ModelRef<'m> {
    Borrowed(&'m dyn Module),
    Owned(Arc<dyn Module>),
}

impl ModelRef<'_> {
    fn as_dyn(&self) -> &dyn Module {
        match self {
            ModelRef::Borrowed(m) => *m,
            ModelRef::Owned(m) => m.as_ref(),
        }
    }
}

/// A reusable tape-free execution session around a model.
///
/// Owns an [`EagerExec`] arena that is reset — not reallocated — between
/// requests, so a serving loop pays no autograd bookkeeping (no tape nodes,
/// backward closures or operand clones) and reuses its activation arena
/// across calls. Works with any [`Module`]: a full [`ResNet`](crate::ResNet),
/// a single layer, or a custom stack.
///
/// Batches are **sharded across the `qn-parallel` worker pool**: the batch
/// axis is split into contiguous chunks, each chunk runs the full forward
/// pass on its own persistent worker arena (reset, not reallocated, between
/// calls), and the chunk outputs are concatenated. Inference is per-sample
/// independent (batch norm uses running statistics, all other ops act per
/// sample or per row), so the sharded result is **bit-identical** to the
/// unsharded one at any thread count — the property suites assert this.
/// Set `QN_NUM_THREADS=1` to force sequential execution.
///
/// For requests whose shape comes from untrusted input, construct the
/// session with [`InferenceSession::with_sample_shape`] and use the `try_*`
/// entry points: they return [`TensorError::ShapeMismatch`] instead of
/// panicking on a malformed request.
///
/// # Example
///
/// ```
/// use qn_core::NeuronSpec;
/// use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
/// use qn_tensor::{Rng, Tensor};
///
/// let net = ResNet::cifar(ResNetConfig {
///     depth: 8,
///     base_width: 4,
///     num_classes: 10,
///     neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
///     placement: NeuronPlacement::All,
///     seed: 0,
/// });
/// let mut session = InferenceSession::new(&net);
/// let mut rng = Rng::seed_from(1);
/// // one sample: [C, H, W] in, [classes] out
/// let logits = session.predict(&Tensor::randn(&[3, 16, 16], &mut rng));
/// assert_eq!(logits.shape().dims(), &[10]);
/// // a batch: [B, C, H, W] in, [B, classes] out
/// let batch = session.predict_batch(&Tensor::randn(&[4, 3, 16, 16], &mut rng));
/// assert_eq!(batch.shape().dims(), &[4, 10]);
/// ```
pub struct InferenceSession<'m> {
    model: ModelRef<'m>,
    cx: EagerExec,
    /// Session-owned buffer pool: outputs are materialized from it (hand
    /// them back with [`InferenceSession::recycle`]) and the arena draws
    /// its kernel scratch from it. With a warm pool and a caller that
    /// recycles, steady-state `predict` performs **zero** heap allocations
    /// (proved by the counting-allocator `alloc` bench in `qn-bench`).
    pool: Arc<BufferPool>,
    /// Per-worker arenas for sharded batches, grown on demand and reused
    /// across calls (index `w` always serves shard `w`, so each arena's
    /// parameter-snapshot cache stays warm). Each worker arena recycles
    /// through its **own** `BufferPool` shard, so workers never contend on
    /// a pool lock.
    shard_arenas: Vec<EagerExec>,
    /// Output var of each shard's last pass (reused across calls).
    shard_out: Vec<Option<Var>>,
    /// Shard ranges of the last batch (reused across calls).
    shard_ranges: Vec<(usize, usize)>,
    sample_shape: Option<Vec<usize>>,
    precision: Precision,
}

impl<'m> InferenceSession<'m> {
    /// Creates a session around `model` with no input validation: the
    /// `try_*` entry points then perform no shape checks and behave exactly
    /// like [`InferenceSession::predict`] / [`predict_batch`]
    /// (`Err` is never returned). Use
    /// [`InferenceSession::with_sample_shape`] when requests are untrusted.
    ///
    /// [`predict_batch`]: InferenceSession::predict_batch
    pub fn new(model: &'m dyn Module) -> Self {
        Self::from_ref(ModelRef::Borrowed(model))
    }

    /// Creates a session that **shares ownership** of its model, so the
    /// session has no borrow on the caller (`InferenceSession<'static>`).
    /// This is the constructor hot-swap registries use: the old model stays
    /// alive until the last session holding its `Arc` drops.
    pub fn owned(model: Arc<dyn Module>) -> InferenceSession<'static> {
        InferenceSession::from_ref(ModelRef::Owned(model))
    }

    /// Creates an **int8** session: snapshots `model` into its quantized
    /// twin (see `Module::quantized`) and serves that, owned. Returns
    /// `None` when some layer in the tree has no quantized form — callers
    /// fall back to an f32 session.
    ///
    /// The original `model` is not retained: later weight updates to it do
    /// not affect this session.
    pub fn quantized(model: &dyn Module) -> Option<InferenceSession<'static>> {
        let twin = model.quantized()?;
        let mut s = InferenceSession::from_ref(ModelRef::Owned(Arc::from(twin)));
        s.precision = Precision::Int8;
        Some(s)
    }

    /// Like [`InferenceSession::quantized`], but calibrates the twin's
    /// activation scales on `batches` before serving (see
    /// `qn_nn::calibrate`). This is the deployment configuration: frozen
    /// scales skip the per-row absmax pass and make the served arithmetic
    /// depend only on the snapshot, not on traffic history. With zero
    /// batches the twin stays in dynamic mode.
    pub fn quantized_calibrated(
        model: &dyn Module,
        batches: impl IntoIterator<Item = Tensor>,
    ) -> Option<InferenceSession<'static>> {
        let twin = qn_nn::quantize_calibrated(model, batches)?;
        let mut s = InferenceSession::from_ref(ModelRef::Owned(Arc::from(twin)));
        s.precision = Precision::Int8;
        Some(s)
    }

    fn from_ref(model: ModelRef<'m>) -> Self {
        let pool = Arc::new(BufferPool::new());
        InferenceSession {
            model,
            cx: EagerExec::with_pool(Arc::clone(&pool)),
            pool,
            shard_arenas: Vec::new(),
            shard_out: Vec::new(),
            shard_ranges: Vec::new(),
            sample_shape: None,
            precision: Precision::F32,
        }
    }

    /// Creates a session that validates every request against the
    /// **per-sample** shape `dims` (batch dimension excluded) — e.g.
    /// `[3, 32, 32]` for a CIFAR classifier.
    pub fn with_sample_shape(model: &'m dyn Module, dims: &[usize]) -> Self {
        let mut s = InferenceSession::new(model);
        s.sample_shape = Some(dims.to_vec());
        s
    }

    /// Configures (or clears) per-sample shape validation after
    /// construction — the post-hoc form of
    /// [`InferenceSession::with_sample_shape`] for sessions built through
    /// [`InferenceSession::owned`] / [`InferenceSession::quantized`].
    pub fn set_sample_shape(&mut self, dims: Option<&[usize]>) {
        self.sample_shape = dims.map(<[usize]>::to_vec);
    }

    /// The numeric tier this session executes in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The served model's weight storage dtype (`"f32"` / `"int8"`) — from
    /// `Module::weight_dtype`, so it reflects what is actually loaded, not
    /// just the requested precision.
    pub fn weight_dtype(&self) -> &'static str {
        self.model.as_dyn().weight_dtype()
    }

    /// The session's buffer pool (outputs are drawn from it; see
    /// [`InferenceSession::recycle`]).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Returns a finished output tensor's storage to the session pool, so
    /// the next `predict`/`predict_batch` reuses it instead of allocating.
    /// Purely an optimization — dropping the tensor is always correct.
    pub fn recycle(&self, output: Tensor) {
        output.into_pool(&self.pool);
    }

    /// The model served by this session.
    pub fn model(&self) -> &dyn Module {
        self.model.as_dyn()
    }

    /// Runs one sample (no batch dimension) through the tape-free path and
    /// strips the batch dimension from the output.
    ///
    /// # Panics
    ///
    /// Panics if the sample's shape does not fit the model (each layer's
    /// shape contract applies); use [`InferenceSession::try_predict`] for
    /// untrusted input.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        // Single sample: always the one-arena path. The batch dim is added
        // on a stack array (spilling to the heap only for rank > 15
        // requests) and the output copied into a pooled tensor with the
        // batch dim stripped — no intermediate reshapes, and with a warm
        // pool no allocations at all.
        let nd = x.ndim();
        let mut stack = [0usize; 16];
        let mut heap = Vec::new();
        let dims: &[usize] = if nd < stack.len() {
            stack[0] = 1;
            stack[1..=nd].copy_from_slice(x.shape().dims());
            &stack[..nd + 1]
        } else {
            heap.reserve_exact(nd + 1);
            heap.push(1);
            heap.extend_from_slice(x.shape().dims());
            &heap
        };
        self.cx.reset();
        let v = self.cx.leaf_reshaped(x, dims);
        let y = self.model.as_dyn().forward(&mut self.cx, v);
        let yv = self.cx.value(y);
        let ydims = yv.shape().dims();
        assert!(
            ydims.first() == Some(&1),
            "model output must keep the batch dimension"
        );
        let mut out = Tensor::from_pooled_uninit(&self.pool, &ydims[1..]);
        out.data_mut().copy_from_slice(yv.data());
        out
    }

    /// Runs a batch (leading batch dimension) through the tape-free path,
    /// sharding the batch axis across the `qn-parallel` pool (bit-identical
    /// to sequential execution; see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if the batch's shape does not fit the model; use
    /// [`InferenceSession::try_predict_batch`] for untrusted input.
    pub fn predict_batch(&mut self, x: &Tensor) -> Tensor {
        let batch = x.shape().dim(0);
        let shards = qn_parallel::num_threads().min(batch.max(1));
        // rank > 16 cannot use the shard-slicing fast path; run unsharded
        if shards <= 1 || x.ndim() > 16 {
            self.cx.reset();
            let v = self.cx.leaf_view(x);
            let y = self.model.as_dyn().forward(&mut self.cx, v);
            let yv = self.cx.value(y);
            let mut out = Tensor::from_pooled_uninit(&self.pool, yv.shape().dims());
            out.data_mut().copy_from_slice(yv.data());
            return out;
        }
        if self.shard_arenas.len() < shards {
            self.shard_arenas
                .resize_with(shards, || EagerExec::with_pool(Arc::new(BufferPool::new())));
        }
        if self.shard_out.len() < shards {
            self.shard_out.resize(shards, None);
        }
        qn_parallel::split_evenly_into(batch, shards, &mut self.shard_ranges);
        let model = self.model.as_dyn();
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(shards);
            let work = self
                .shard_arenas
                .iter_mut()
                .zip(self.shard_out.iter_mut())
                .zip(self.shard_ranges.iter());
            for ((arena, slot), &(lo, hi)) in work {
                tasks.push(Box::new(move || {
                    arena.reset();
                    // copy the shard's rows straight into a recycled slot
                    let v = arena.leaf_slice0(x, lo, hi);
                    *slot = Some(model.forward(arena, v));
                }));
            }
            qn_parallel::par_scope(tasks);
        }
        // Assemble the shard outputs (still sitting in their arenas) into
        // one pooled tensor: shard `i` owns rows `ranges[i]`, so this is a
        // straight per-shard memcpy — bit-identical to the old
        // slice-then-concat, without materializing per-shard tensors.
        let (nd, out_dims, inner) = {
            let first = self.shard_out[0].expect("par_scope runs every shard");
            let sd = self.shard_arenas[0].value(first).shape().dims();
            assert!(
                !sd.is_empty() && sd.len() <= 16,
                "model output must keep the batch dimension (rank <= 16)"
            );
            let mut out_dims = [0usize; 16];
            out_dims[..sd.len()].copy_from_slice(sd);
            out_dims[0] = batch;
            let inner: usize = sd[1..].iter().product();
            (sd.len(), out_dims, inner)
        };
        let mut out = Tensor::from_pooled_uninit(&self.pool, &out_dims[..nd]);
        {
            let od = out.data_mut();
            for (si, &(lo, hi)) in self.shard_ranges.iter().enumerate() {
                let v = self.shard_out[si].expect("par_scope runs every shard");
                let sv = self.shard_arenas[si].value(v);
                debug_assert_eq!(sv.shape().dim(0), hi - lo, "shard output rows");
                od[lo * inner..hi * inner].copy_from_slice(sv.data());
            }
        }
        out
    }

    /// Validating variant of [`InferenceSession::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] if the sample has zero elements
    /// (any zero-sized dimension), and [`TensorError::ShapeMismatch`] if
    /// its shape differs from the shape configured via
    /// [`InferenceSession::with_sample_shape`].
    pub fn try_predict(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        if x.shape().dims().contains(&0) {
            return Err(TensorError::EmptyInput {
                what: "predict sample",
            });
        }
        if let Some(expected) = &self.sample_shape {
            if x.shape().dims() != expected.as_slice() {
                return Err(TensorError::ShapeMismatch {
                    expected: expected.clone(),
                    actual: x.shape().dims().to_vec(),
                });
            }
        }
        Ok(self.predict(x))
    }

    /// Validating variant of [`InferenceSession::predict_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty batch (`b == 0`, or
    /// any other zero-sized dimension) and [`TensorError::ShapeMismatch`]
    /// when the batch dimension exceeds [`MAX_BATCH`] or the trailing dims
    /// differ from the configured per-sample shape (or the input has no
    /// batch dimension). Never panics on a malformed batch *shape*; the
    /// underlying model's own shape contract still applies to the sample
    /// dims when no sample shape was configured.
    pub fn try_predict_batch(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        let dims = x.shape().dims();
        if dims.is_empty() || dims.contains(&0) {
            return Err(TensorError::EmptyInput {
                what: "predict_batch batch",
            });
        }
        let batch = dims[0];
        if batch > MAX_BATCH {
            let mut want = vec![MAX_BATCH];
            want.extend_from_slice(&dims[1..]);
            return Err(TensorError::ShapeMismatch {
                expected: want,
                actual: dims.to_vec(),
            });
        }
        if let Some(expected) = &self.sample_shape {
            if dims.len() != expected.len() + 1 || dims[1..] != expected[..] {
                let mut want = vec![dims.first().copied().unwrap_or(1)];
                want.extend_from_slice(expected);
                return Err(TensorError::ShapeMismatch {
                    expected: want,
                    actual: dims.to_vec(),
                });
            }
        }
        Ok(self.predict_batch(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NeuronPlacement, ResNet, ResNetConfig};
    use qn_autograd::Graph;
    use qn_core::NeuronSpec;
    use qn_tensor::Rng;

    fn tiny_net(neuron: NeuronSpec) -> ResNet {
        ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron,
            placement: NeuronPlacement::All,
            seed: 5,
        })
    }

    #[test]
    fn predict_matches_taped_forward() {
        for neuron in [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 3 },
        ] {
            let net = tiny_net(neuron);
            let mut rng = Rng::seed_from(7);
            let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let yv = qn_nn::Module::forward(&net, &mut g, xv);
            let taped = g.value(yv).clone();
            let mut session = InferenceSession::new(&net);
            let eager = session.predict_batch(&x);
            assert!(taped.allclose(&eager, 1e-6), "{neuron:?}");
        }
    }

    #[test]
    fn predict_strips_batch_dim() {
        let net = tiny_net(NeuronSpec::Linear);
        let mut rng = Rng::seed_from(8);
        let mut session = InferenceSession::new(&net);
        let y = session.predict(&Tensor::randn(&[3, 16, 16], &mut rng));
        assert_eq!(y.shape().dims(), &[10]);
    }

    #[test]
    fn session_is_reusable_across_requests() {
        let net = tiny_net(NeuronSpec::EfficientQuadratic { rank: 3 });
        let mut rng = Rng::seed_from(9);
        let mut session = InferenceSession::new(&net);
        let x = Tensor::randn(&[1, 3, 16, 16], &mut rng);
        let first = session.predict_batch(&x);
        for _ in 0..3 {
            let again = session.predict_batch(&x);
            assert!(first.allclose(&again, 0.0), "deterministic across reuse");
        }
    }

    #[test]
    fn quantized_session_tracks_f32_logits() {
        for neuron in [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 3 },
        ] {
            let net = tiny_net(neuron);
            let mut f32_session = InferenceSession::new(&net);
            assert_eq!(f32_session.precision(), Precision::F32);
            assert_eq!(f32_session.weight_dtype(), "f32");

            let mut q_session =
                InferenceSession::quantized(&net).expect("ResNet quantizes end to end");
            assert_eq!(q_session.precision(), Precision::Int8);
            assert_eq!(q_session.weight_dtype(), "int8");

            let mut rng = Rng::seed_from(21);
            let x = Tensor::randn(&[4, 3, 16, 16], &mut rng);
            let exact = f32_session.predict_batch(&x);
            let quant = q_session.predict_batch(&x);
            assert_eq!(exact.shape().dims(), quant.shape().dims());
            let drift = exact
                .data()
                .iter()
                .zip(quant.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(drift < 0.5, "{neuron:?}: max logit drift {drift}");
        }
    }

    #[test]
    fn quantized_session_is_deterministic_across_reuse() {
        let net = tiny_net(NeuronSpec::EfficientQuadratic { rank: 3 });
        let mut session = InferenceSession::quantized(&net).expect("quantizes");
        let mut rng = Rng::seed_from(22);
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        // The first pass observes activation ranges (dynamic mode); its
        // output is already deterministic because each forward quantizes
        // per-row, independent of the observed stats.
        let first = session.predict_batch(&x);
        for _ in 0..3 {
            let again = session.predict_batch(&x);
            assert!(first.allclose(&again, 0.0), "bit-identical across reuse");
        }
    }

    #[test]
    fn precision_parses_and_displays() {
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse("int8"), Some(Precision::Int8));
        assert_eq!(Precision::parse("fp64"), None);
        assert_eq!(Precision::Int8.to_string(), "int8");
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn try_predict_rejects_malformed_shapes() {
        let net = tiny_net(NeuronSpec::Linear);
        let mut rng = Rng::seed_from(10);
        let mut session = InferenceSession::with_sample_shape(&net, &[3, 16, 16]);
        // good sample passes
        assert!(session
            .try_predict(&Tensor::randn(&[3, 16, 16], &mut rng))
            .is_ok());
        // wrong rank and wrong extent are rejected, not panicking
        for bad in [vec![16usize, 16], vec![1, 16, 16], vec![3, 8, 16]] {
            let err = session.try_predict(&Tensor::zeros(&bad)).unwrap_err();
            assert!(matches!(err, TensorError::ShapeMismatch { .. }), "{bad:?}");
        }
        // batch variants
        assert!(session
            .try_predict_batch(&Tensor::randn(&[2, 3, 16, 16], &mut rng))
            .is_ok());
        assert!(session
            .try_predict_batch(&Tensor::zeros(&[3, 16, 16]))
            .is_err());
    }

    #[test]
    fn try_predict_batch_rejects_empty_and_oversized_batches() {
        let net = tiny_net(NeuronSpec::Linear);
        // b == 0 must error, not panic — with and without a sample shape
        let mut plain = InferenceSession::new(&net);
        let err = plain
            .try_predict_batch(&Tensor::zeros(&[0, 3, 16, 16]))
            .unwrap_err();
        assert!(matches!(err, TensorError::EmptyInput { .. }), "{err:?}");
        let mut checked = InferenceSession::with_sample_shape(&net, &[3, 16, 16]);
        let err = checked
            .try_predict_batch(&Tensor::zeros(&[0, 3, 16, 16]))
            .unwrap_err();
        assert!(matches!(err, TensorError::EmptyInput { .. }), "{err:?}");
        // an interior zero-sized dim is also an empty input
        let err = plain
            .try_predict_batch(&Tensor::zeros(&[2, 0, 16, 16]))
            .unwrap_err();
        assert!(matches!(err, TensorError::EmptyInput { .. }), "{err:?}");
        // a zero-element sample too
        let err = plain.try_predict(&Tensor::zeros(&[0, 16, 16])).unwrap_err();
        assert!(matches!(err, TensorError::EmptyInput { .. }), "{err:?}");
        // over-limit batches are rejected at admission (shape is cheap to
        // build: the guard fires before any data is touched)
        let over = Tensor::zeros(&[MAX_BATCH + 1, 1]);
        let err = plain.try_predict_batch(&over).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }), "{err:?}");
    }
}
