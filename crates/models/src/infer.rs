//! Tape-free inference sessions for serving-style workloads.

use qn_autograd::{EagerExec, Exec};
use qn_nn::Module;
use qn_tensor::{Tensor, TensorError};

/// A reusable tape-free execution session around a model.
///
/// Owns an [`EagerExec`] arena that is reset — not reallocated — between
/// requests, so a serving loop pays no autograd bookkeeping (no tape nodes,
/// backward closures or operand clones) and reuses its activation arena
/// across calls. Works with any [`Module`]: a full [`ResNet`](crate::ResNet),
/// a single layer, or a custom stack.
///
/// Batches are **sharded across the `qn-parallel` worker pool**: the batch
/// axis is split into contiguous chunks, each chunk runs the full forward
/// pass on its own persistent worker arena (reset, not reallocated, between
/// calls), and the chunk outputs are concatenated. Inference is per-sample
/// independent (batch norm uses running statistics, all other ops act per
/// sample or per row), so the sharded result is **bit-identical** to the
/// unsharded one at any thread count — the property suites assert this.
/// Set `QN_NUM_THREADS=1` to force sequential execution.
///
/// For requests whose shape comes from untrusted input, construct the
/// session with [`InferenceSession::with_sample_shape`] and use the `try_*`
/// entry points: they return [`TensorError::ShapeMismatch`] instead of
/// panicking on a malformed request.
///
/// # Example
///
/// ```
/// use qn_core::NeuronSpec;
/// use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
/// use qn_tensor::{Rng, Tensor};
///
/// let net = ResNet::cifar(ResNetConfig {
///     depth: 8,
///     base_width: 4,
///     num_classes: 10,
///     neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
///     placement: NeuronPlacement::All,
///     seed: 0,
/// });
/// let mut session = InferenceSession::new(&net);
/// let mut rng = Rng::seed_from(1);
/// // one sample: [C, H, W] in, [classes] out
/// let logits = session.predict(&Tensor::randn(&[3, 16, 16], &mut rng));
/// assert_eq!(logits.shape().dims(), &[10]);
/// // a batch: [B, C, H, W] in, [B, classes] out
/// let batch = session.predict_batch(&Tensor::randn(&[4, 3, 16, 16], &mut rng));
/// assert_eq!(batch.shape().dims(), &[4, 10]);
/// ```
pub struct InferenceSession<'m> {
    model: &'m dyn Module,
    cx: EagerExec,
    /// Per-worker arenas for sharded batches, grown on demand and reused
    /// across calls (index `w` always serves shard `w`, so each arena's
    /// parameter-snapshot cache stays warm).
    shard_arenas: Vec<EagerExec>,
    sample_shape: Option<Vec<usize>>,
}

impl<'m> InferenceSession<'m> {
    /// Creates a session around `model` with no input validation: the
    /// `try_*` entry points then perform no shape checks and behave exactly
    /// like [`InferenceSession::predict`] / [`predict_batch`]
    /// (`Err` is never returned). Use
    /// [`InferenceSession::with_sample_shape`] when requests are untrusted.
    ///
    /// [`predict_batch`]: InferenceSession::predict_batch
    pub fn new(model: &'m dyn Module) -> Self {
        InferenceSession {
            model,
            cx: EagerExec::new(),
            shard_arenas: Vec::new(),
            sample_shape: None,
        }
    }

    /// Creates a session that validates every request against the
    /// **per-sample** shape `dims` (batch dimension excluded) — e.g.
    /// `[3, 32, 32]` for a CIFAR classifier.
    pub fn with_sample_shape(model: &'m dyn Module, dims: &[usize]) -> Self {
        InferenceSession {
            model,
            cx: EagerExec::new(),
            shard_arenas: Vec::new(),
            sample_shape: Some(dims.to_vec()),
        }
    }

    /// The model served by this session.
    pub fn model(&self) -> &dyn Module {
        self.model
    }

    /// Runs one sample (no batch dimension) through the tape-free path and
    /// strips the batch dimension from the output.
    ///
    /// # Panics
    ///
    /// Panics if the sample's shape does not fit the model (each layer's
    /// shape contract applies); use [`InferenceSession::try_predict`] for
    /// untrusted input.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        let mut dims = Vec::with_capacity(x.shape().dims().len() + 1);
        dims.push(1);
        dims.extend_from_slice(x.shape().dims());
        let batched = x
            .reshape(&dims)
            .expect("adding a batch dim preserves numel");
        let y = self.predict_batch(&batched);
        let ydims = y.shape().dims().to_vec();
        y.reshape(&ydims[1..])
            .expect("stripping the batch dim preserves numel")
    }

    /// Runs a batch (leading batch dimension) through the tape-free path,
    /// sharding the batch axis across the `qn-parallel` pool (bit-identical
    /// to sequential execution; see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if the batch's shape does not fit the model; use
    /// [`InferenceSession::try_predict_batch`] for untrusted input.
    pub fn predict_batch(&mut self, x: &Tensor) -> Tensor {
        let batch = x.shape().dim(0);
        let shards = qn_parallel::num_threads().min(batch.max(1));
        if shards <= 1 {
            self.cx.reset();
            let v = self.cx.leaf(x.clone());
            let y = self.model.forward(&mut self.cx, v);
            return self.cx.take(y);
        }
        if self.shard_arenas.len() < shards {
            self.shard_arenas.resize_with(shards, EagerExec::new);
        }
        let ranges = qn_parallel::split_evenly(batch, shards);
        let model = self.model;
        let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(shards);
        outputs.resize_with(shards, || None);
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(shards);
            let work = self
                .shard_arenas
                .iter_mut()
                .zip(outputs.iter_mut())
                .zip(ranges.iter());
            for ((arena, slot), &(lo, hi)) in work {
                tasks.push(Box::new(move || {
                    arena.reset();
                    let v = arena.leaf(x.slice_axis(0, lo, hi));
                    let y = model.forward(arena, v);
                    *slot = Some(arena.take(y));
                }));
            }
            qn_parallel::par_scope(tasks);
        }
        let parts: Vec<Tensor> = outputs
            .into_iter()
            .map(|t| t.expect("par_scope runs every shard"))
            .collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Validating variant of [`InferenceSession::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the sample's shape differs
    /// from the shape configured via
    /// [`InferenceSession::with_sample_shape`].
    pub fn try_predict(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        if let Some(expected) = &self.sample_shape {
            if x.shape().dims() != expected.as_slice() {
                return Err(TensorError::ShapeMismatch {
                    expected: expected.clone(),
                    actual: x.shape().dims().to_vec(),
                });
            }
        }
        Ok(self.predict(x))
    }

    /// Validating variant of [`InferenceSession::predict_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the batch's trailing dims
    /// differ from the configured per-sample shape (or the input has no
    /// batch dimension).
    pub fn try_predict_batch(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        if let Some(expected) = &self.sample_shape {
            let dims = x.shape().dims();
            if dims.len() != expected.len() + 1 || dims[1..] != expected[..] {
                let mut want = vec![dims.first().copied().unwrap_or(1)];
                want.extend_from_slice(expected);
                return Err(TensorError::ShapeMismatch {
                    expected: want,
                    actual: dims.to_vec(),
                });
            }
        }
        Ok(self.predict_batch(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NeuronPlacement, ResNet, ResNetConfig};
    use qn_autograd::Graph;
    use qn_core::NeuronSpec;
    use qn_tensor::Rng;

    fn tiny_net(neuron: NeuronSpec) -> ResNet {
        ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron,
            placement: NeuronPlacement::All,
            seed: 5,
        })
    }

    #[test]
    fn predict_matches_taped_forward() {
        for neuron in [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 3 },
        ] {
            let net = tiny_net(neuron);
            let mut rng = Rng::seed_from(7);
            let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let yv = qn_nn::Module::forward(&net, &mut g, xv);
            let taped = g.value(yv).clone();
            let mut session = InferenceSession::new(&net);
            let eager = session.predict_batch(&x);
            assert!(taped.allclose(&eager, 1e-6), "{neuron:?}");
        }
    }

    #[test]
    fn predict_strips_batch_dim() {
        let net = tiny_net(NeuronSpec::Linear);
        let mut rng = Rng::seed_from(8);
        let mut session = InferenceSession::new(&net);
        let y = session.predict(&Tensor::randn(&[3, 16, 16], &mut rng));
        assert_eq!(y.shape().dims(), &[10]);
    }

    #[test]
    fn session_is_reusable_across_requests() {
        let net = tiny_net(NeuronSpec::EfficientQuadratic { rank: 3 });
        let mut rng = Rng::seed_from(9);
        let mut session = InferenceSession::new(&net);
        let x = Tensor::randn(&[1, 3, 16, 16], &mut rng);
        let first = session.predict_batch(&x);
        for _ in 0..3 {
            let again = session.predict_batch(&x);
            assert!(first.allclose(&again, 0.0), "deterministic across reuse");
        }
    }

    #[test]
    fn try_predict_rejects_malformed_shapes() {
        let net = tiny_net(NeuronSpec::Linear);
        let mut rng = Rng::seed_from(10);
        let mut session = InferenceSession::with_sample_shape(&net, &[3, 16, 16]);
        // good sample passes
        assert!(session
            .try_predict(&Tensor::randn(&[3, 16, 16], &mut rng))
            .is_ok());
        // wrong rank and wrong extent are rejected, not panicking
        for bad in [vec![16usize, 16], vec![1, 16, 16], vec![3, 8, 16]] {
            let err = session.try_predict(&Tensor::zeros(&bad)).unwrap_err();
            assert!(matches!(err, TensorError::ShapeMismatch { .. }), "{bad:?}");
        }
        // batch variants
        assert!(session
            .try_predict_batch(&Tensor::randn(&[2, 3, 16, 16], &mut rng))
            .is_ok());
        assert!(session
            .try_predict_batch(&Tensor::zeros(&[3, 16, 16]))
            .is_err());
    }
}
