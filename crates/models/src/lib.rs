//! # qn-models
//!
//! The model zoo of the reproduction: CIFAR-style ResNets (depths 20–110),
//! an ImageNet-style ResNet-18, and a Transformer encoder–decoder — all with
//! **pluggable neuron kinds** via [`qn_core::NeuronSpec`], so the same
//! architecture can be instantiated with linear convolutions, the proposed
//! efficient quadratic neuron, or any comparator family from the paper's
//! Table I.
//!
//! - [`ResNet`] — Figs. 4, 5, 6 and 7 of the paper.
//! - [`Transformer`] — Table II (quadratic projections inside multi-head
//!   attention).
//! - [`InferenceSession`] — the tape-free serving path: reusable eager
//!   execution around any model, with validating `try_*` entry points for
//!   untrusted request shapes.
//! - [`ModelRegistry`] — named model slots with atomic hot-swap, so
//!   checkpoint-reloaded weights go live without pausing serving.
//!
//! # Example
//!
//! ```
//! use qn_core::NeuronSpec;
//! use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
//! use qn_nn::Module;
//!
//! let net = ResNet::cifar(ResNetConfig {
//!     depth: 20,
//!     base_width: 4,
//!     num_classes: 10,
//!     neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
//!     placement: NeuronPlacement::All,
//!     seed: 0,
//! });
//! assert!(net.param_count() > 0);
//! ```

mod infer;
mod registry;
mod resnet;
mod transformer;

pub use infer::{InferenceSession, Precision, MAX_BATCH};
pub use registry::{ModelRegistry, RegistrySession, SlotInfo};
pub use resnet::{NeuronPlacement, ResNet, ResNetConfig};
pub use transformer::{Transformer, TransformerConfig};
