use qn_autograd::{EagerExec, Exec, Graph, Parameter, Var};
use qn_core::neurons::EfficientQuadraticLinear;
use qn_data::{BOS, EOS, PAD};
use qn_nn::{visit_scoped, Embedding, LayerNorm, Linear, Module, ParamVisitor};
use qn_tensor::{Rng, Tensor, TensorError};

/// Configuration for [`Transformer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformerConfig {
    /// Source vocabulary size.
    pub src_vocab: usize,
    /// Target vocabulary size.
    pub tgt_vocab: usize,
    /// Model width; must be divisible by `heads` and, when quadratic
    /// projections are enabled, by `rank + 1`.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub enc_layers: usize,
    /// Decoder layers.
    pub dec_layers: usize,
    /// Feed-forward width.
    pub d_ff: usize,
    /// `Some(k)`: replace the Q/K/V/O projections of every attention block
    /// with efficient quadratic neurons of rank `k` (the paper's Table II
    /// deployment). `None`: linear baseline.
    pub quadratic_rank: Option<usize>,
    /// Maximum sequence length (positional-encoding table size).
    pub max_len: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl TransformerConfig {
    fn validate(&self) {
        assert!(
            self.d_model.is_multiple_of(self.heads),
            "d_model must divide by heads"
        );
        if let Some(k) = self.quadratic_rank {
            assert!(
                self.d_model.is_multiple_of(k + 1),
                "d_model {} must divide by rank+1 = {}",
                self.d_model,
                k + 1
            );
        }
    }
}

/// Builds an attention projection: linear, or the paper's quadratic neuron.
fn projection(cfg: &TransformerConfig, rng: &mut Rng) -> Box<dyn Module> {
    match cfg.quadratic_rank {
        None => Box::new(Linear::new(cfg.d_model, cfg.d_model, false, rng)),
        Some(k) => {
            let neurons = cfg.d_model / (k + 1);
            Box::new(EfficientQuadraticLinear::new(cfg.d_model, neurons, k, rng))
        }
    }
}

/// Multi-head attention with pluggable projections.
struct Mha {
    q: Box<dyn Module>,
    k: Box<dyn Module>,
    v: Box<dyn Module>,
    o: Box<dyn Module>,
    heads: usize,
    d_model: usize,
}

impl Mha {
    fn new(cfg: &TransformerConfig, rng: &mut Rng) -> Self {
        Mha {
            q: projection(cfg, rng),
            k: projection(cfg, rng),
            v: projection(cfg, rng),
            o: projection(cfg, rng),
            heads: cfg.heads,
            d_model: cfg.d_model,
        }
    }

    /// `x_q: [B, Tq, D]`, `x_kv: [B, Tk, D]`, additive mask `[B·H, Tq, Tk]`.
    fn forward(&self, g: &mut dyn Exec, x_q: Var, x_kv: Var, mask: Option<&Tensor>) -> Var {
        let (b, tq, d) = {
            let s = g.value(x_q).shape().dims().to_vec();
            (s[0], s[1], s[2])
        };
        let tk = g.value(x_kv).shape().dim(1);
        let h = self.heads;
        let dh = d / h;
        let split = |g: &mut dyn Exec, x: Var, t: usize| -> Var {
            let x4 = g.reshape(x, &[b, t, h, dh]);
            let x4 = g.permute(x4, &[0, 2, 1, 3]); // [B, H, T, dh]
            g.reshape(x4, &[b * h, t, dh])
        };
        let q = self.q.forward(g, x_q);
        let k = self.k.forward(g, x_kv);
        let v = self.v.forward(g, x_kv);
        let q3 = split(g, q, tq);
        let k3 = split(g, k, tk);
        let v3 = split(g, v, tk);
        let kt = g.permute(k3, &[0, 2, 1]); // [B·H, dh, Tk]
        let scores = g.bmm(q3, kt);
        let mut scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
        if let Some(m) = mask {
            let mv = g.leaf(m.clone());
            scores = g.add(scores, mv);
        }
        let attn = g.softmax_last(scores);
        let ctx = g.bmm(attn, v3); // [B·H, Tq, dh]
        let ctx = g.reshape(ctx, &[b, h, tq, dh]);
        let ctx = g.permute(ctx, &[0, 2, 1, 3]); // [B, Tq, H, dh]
        let ctx = g.reshape(ctx, &[b, tq, self.d_model]);
        self.o.forward(g, ctx)
    }

    fn visit_params(&self, vis: &mut dyn ParamVisitor) {
        visit_scoped(vis, "q", |vis| self.q.visit_params(vis));
        visit_scoped(vis, "k", |vis| self.k.visit_params(vis));
        visit_scoped(vis, "v", |vis| self.v.visit_params(vis));
        visit_scoped(vis, "o", |vis| self.o.visit_params(vis));
    }
}

struct FeedForward {
    lin1: Linear,
    lin2: Linear,
}

impl FeedForward {
    fn new(cfg: &TransformerConfig, rng: &mut Rng) -> Self {
        FeedForward {
            lin1: Linear::new(cfg.d_model, cfg.d_ff, true, rng),
            lin2: Linear::new(cfg.d_ff, cfg.d_model, true, rng),
        }
    }

    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let h = self.lin1.forward(g, x);
        let h = g.relu(h);
        self.lin2.forward(g, h)
    }

    fn visit_params(&self, vis: &mut dyn ParamVisitor) {
        visit_scoped(vis, "lin1", |vis| self.lin1.visit_params(vis));
        visit_scoped(vis, "lin2", |vis| self.lin2.visit_params(vis));
    }
}

struct EncoderLayer {
    ln1: LayerNorm,
    attn: Mha,
    ln2: LayerNorm,
    ffn: FeedForward,
    dropout: f32,
}

impl EncoderLayer {
    fn new(cfg: &TransformerConfig, rng: &mut Rng) -> Self {
        EncoderLayer {
            ln1: LayerNorm::new(cfg.d_model),
            attn: Mha::new(cfg, rng),
            ln2: LayerNorm::new(cfg.d_model),
            ffn: FeedForward::new(cfg, rng),
            dropout: cfg.dropout,
        }
    }

    fn forward(&self, g: &mut dyn Exec, x: Var, mask: Option<&Tensor>) -> Var {
        let n = self.ln1.forward(g, x);
        let a = self.attn.forward(g, n, n, mask);
        let a = g.dropout(a, self.dropout);
        let x = g.add(x, a);
        let n = self.ln2.forward(g, x);
        let f = self.ffn.forward(g, n);
        let f = g.dropout(f, self.dropout);
        g.add(x, f)
    }

    fn visit_params(&self, vis: &mut dyn ParamVisitor) {
        visit_scoped(vis, "ln1", |vis| self.ln1.visit_params(vis));
        visit_scoped(vis, "attn", |vis| self.attn.visit_params(vis));
        visit_scoped(vis, "ln2", |vis| self.ln2.visit_params(vis));
        visit_scoped(vis, "ffn", |vis| self.ffn.visit_params(vis));
    }
}

struct DecoderLayer {
    ln1: LayerNorm,
    self_attn: Mha,
    ln2: LayerNorm,
    cross_attn: Mha,
    ln3: LayerNorm,
    ffn: FeedForward,
    dropout: f32,
}

impl DecoderLayer {
    fn new(cfg: &TransformerConfig, rng: &mut Rng) -> Self {
        DecoderLayer {
            ln1: LayerNorm::new(cfg.d_model),
            self_attn: Mha::new(cfg, rng),
            ln2: LayerNorm::new(cfg.d_model),
            cross_attn: Mha::new(cfg, rng),
            ln3: LayerNorm::new(cfg.d_model),
            ffn: FeedForward::new(cfg, rng),
            dropout: cfg.dropout,
        }
    }

    fn forward(
        &self,
        g: &mut dyn Exec,
        x: Var,
        memory: Var,
        self_mask: Option<&Tensor>,
        cross_mask: Option<&Tensor>,
    ) -> Var {
        let n = self.ln1.forward(g, x);
        let a = self.self_attn.forward(g, n, n, self_mask);
        let a = g.dropout(a, self.dropout);
        let x = g.add(x, a);
        let n = self.ln2.forward(g, x);
        let c = self.cross_attn.forward(g, n, memory, cross_mask);
        let c = g.dropout(c, self.dropout);
        let x = g.add(x, c);
        let n = self.ln3.forward(g, x);
        let f = self.ffn.forward(g, n);
        let f = g.dropout(f, self.dropout);
        g.add(x, f)
    }

    fn visit_params(&self, vis: &mut dyn ParamVisitor) {
        visit_scoped(vis, "ln1", |vis| self.ln1.visit_params(vis));
        visit_scoped(vis, "self_attn", |vis| self.self_attn.visit_params(vis));
        visit_scoped(vis, "ln2", |vis| self.ln2.visit_params(vis));
        visit_scoped(vis, "cross_attn", |vis| self.cross_attn.visit_params(vis));
        visit_scoped(vis, "ln3", |vis| self.ln3.visit_params(vis));
        visit_scoped(vis, "ffn", |vis| self.ffn.visit_params(vis));
    }
}

/// Pre-LN Transformer encoder–decoder with pluggable attention projections,
/// reproducing the paper's Table II deployment of quadratic neurons inside
/// multi-head attention.
pub struct Transformer {
    src_emb: Embedding,
    tgt_emb: Embedding,
    pe: Tensor,
    encoder: Vec<EncoderLayer>,
    decoder: Vec<DecoderLayer>,
    final_ln: LayerNorm,
    out_proj: Linear,
    config: TransformerConfig,
}

impl Transformer {
    /// Builds a transformer from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads` (or by `rank + 1`
    /// when quadratic projections are enabled).
    pub fn new(config: TransformerConfig) -> Self {
        config.validate();
        let mut rng = Rng::seed_from(config.seed);
        let pe = sinusoidal_pe(config.max_len, config.d_model);
        let encoder = (0..config.enc_layers)
            .map(|_| EncoderLayer::new(&config, &mut rng))
            .collect();
        let decoder = (0..config.dec_layers)
            .map(|_| DecoderLayer::new(&config, &mut rng))
            .collect();
        Transformer {
            src_emb: Embedding::new(config.src_vocab, config.d_model, &mut rng),
            tgt_emb: Embedding::new(config.tgt_vocab, config.d_model, &mut rng),
            pe,
            encoder,
            decoder,
            final_ln: LayerNorm::new(config.d_model),
            out_proj: Linear::new(config.d_model, config.tgt_vocab, true, &mut rng),
            config,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Walks every parameter with its stable dotted path (the persistence
    /// contract used by checkpoints): `src_emb.weight`, `encoder{i}.…`,
    /// `decoder{i}.…`, `final_ln.…`, `out_proj.…`.
    pub fn visit_params(&self, vis: &mut dyn ParamVisitor) {
        visit_scoped(vis, "src_emb", |vis| self.src_emb.visit_params(vis));
        visit_scoped(vis, "tgt_emb", |vis| self.tgt_emb.visit_params(vis));
        for (i, l) in self.encoder.iter().enumerate() {
            visit_scoped(vis, &format!("encoder{i}"), |vis| l.visit_params(vis));
        }
        for (i, l) in self.decoder.iter().enumerate() {
            visit_scoped(vis, &format!("decoder{i}"), |vis| l.visit_params(vis));
        }
        visit_scoped(vis, "final_ln", |vis| self.final_ln.visit_params(vis));
        visit_scoped(vis, "out_proj", |vis| self.out_proj.visit_params(vis));
    }

    /// All trainable parameters, in [`Transformer::visit_params`] order.
    pub fn params(&self) -> Vec<Parameter> {
        struct Collect(Vec<Parameter>);
        impl ParamVisitor for Collect {
            fn param(&mut self, _name: &str, p: &Parameter) {
                self.0.push(p.clone());
            }
        }
        let mut c = Collect(Vec::new());
        self.visit_params(&mut c);
        c.0
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Parameters split into (quadratic `Λᵏ`, all others).
    pub fn param_groups(&self) -> (Vec<Parameter>, Vec<Parameter>) {
        qn_core::split_lambda_params(self.params())
    }

    fn embed(&self, g: &mut dyn Exec, emb: &Embedding, batch: &[Vec<usize>], len: usize) -> Var {
        let b = batch.len();
        let mut flat = Vec::with_capacity(b * len);
        for seq in batch {
            for t in 0..len {
                flat.push(seq.get(t).copied().unwrap_or(PAD));
            }
        }
        let e = emb.forward(g, &flat); // [B·T, D]
        let e = g.scale(e, (self.config.d_model as f32).sqrt());
        let e = g.reshape(e, &[b, len, self.config.d_model]);
        // add positional encoding (suffix broadcast over batch)
        let pe = self.pe.slice_axis(0, 0, len);
        let pv = g.leaf(pe);
        g.add_bcast(e, pv)
    }

    /// Additive key-padding mask `[B·H, Tq, Tk]`: -1e9 where the key is PAD.
    fn padding_mask(&self, batch: &[Vec<usize>], tq: usize, tk: usize) -> Tensor {
        let b = batch.len();
        let h = self.config.heads;
        let mut m = Tensor::zeros(&[b * h, tq, tk]);
        for (bi, seq) in batch.iter().enumerate() {
            for kpos in 0..tk {
                let is_pad = seq.get(kpos).copied().unwrap_or(PAD) == PAD;
                if is_pad {
                    for hi in 0..h {
                        for qpos in 0..tq {
                            m.set(&[bi * h + hi, qpos, kpos], -1e9);
                        }
                    }
                }
            }
        }
        m
    }

    /// Causal + key-padding mask for decoder self-attention.
    fn causal_mask(&self, batch: &[Vec<usize>], t: usize) -> Tensor {
        let mut m = self.padding_mask(batch, t, t);
        let bh = batch.len() * self.config.heads;
        for i in 0..bh {
            for q in 0..t {
                for k in (q + 1)..t {
                    m.set(&[i, q, k], -1e9);
                }
            }
        }
        m
    }

    /// Runs encoder + decoder, returning logits `[B, T_tgt, V]` for decoder
    /// inputs `tgt_in` (already BOS-prefixed and padded by the caller to a
    /// common length).
    pub fn forward(&self, g: &mut dyn Exec, src: &[Vec<usize>], tgt_in: &[Vec<usize>]) -> Var {
        let ts = src.iter().map(Vec::len).max().unwrap_or(1);
        let tt = tgt_in.iter().map(Vec::len).max().unwrap_or(1);
        let src_mask = self.padding_mask(src, ts, ts);
        let mut x = self.embed(g, &self.src_emb, src, ts);
        for l in &self.encoder {
            x = l.forward(g, x, Some(&src_mask));
        }
        let memory = x;
        let self_mask = self.causal_mask(tgt_in, tt);
        let cross_mask = self.padding_mask(src, tt, ts);
        let mut y = self.embed(g, &self.tgt_emb, tgt_in, tt);
        for l in &self.decoder {
            y = l.forward(g, y, memory, Some(&self_mask), Some(&cross_mask));
        }
        let y = self.final_ln.forward(g, y);
        self.out_proj.forward(g, y) // [B, T, V]
    }

    /// Teacher-forced training loss over a batch of (source, target) pairs
    /// with label smoothing. Decoder input is `BOS ⧺ target`, the prediction
    /// target `target ⧺ EOS`; PAD positions carry zero weight.
    pub fn loss(&self, g: &mut Graph, pairs: &[(&[usize], &[usize])], label_smoothing: f32) -> Var {
        let src: Vec<Vec<usize>> = pairs.iter().map(|(s, _)| s.to_vec()).collect();
        let tt = pairs.iter().map(|(_, t)| t.len() + 1).max().unwrap_or(1);
        let mut tgt_in = Vec::with_capacity(pairs.len());
        let mut targets = Vec::with_capacity(pairs.len() * tt);
        let mut weights = Vec::with_capacity(pairs.len() * tt);
        for (_, t) in pairs {
            let mut inp = vec![BOS];
            inp.extend_from_slice(t);
            inp.resize(tt, PAD);
            tgt_in.push(inp);
            for pos in 0..tt {
                if pos < t.len() {
                    targets.push(t[pos]);
                    weights.push(1.0);
                } else if pos == t.len() {
                    targets.push(EOS);
                    weights.push(1.0);
                } else {
                    targets.push(PAD);
                    weights.push(0.0);
                }
            }
        }
        let logits = self.forward(g, &src, &tgt_in);
        let b = pairs.len();
        let flat = g.reshape(logits, &[b * tt, self.config.tgt_vocab]);
        g.softmax_cross_entropy_weighted(flat, &targets, &weights, label_smoothing)
    }

    /// Greedy decoding of one source sentence (no BOS/EOS framing in the
    /// input); stops at EOS or `max_len` tokens.
    ///
    /// Runs tape-free: each step evaluates the forward pass on a reused
    /// [`EagerExec`] arena instead of recording an autograd tape.
    ///
    /// # Panics
    ///
    /// Panics if any source token id is outside the source vocabulary; use
    /// [`Transformer::try_greedy_decode`] for ids from untrusted requests.
    pub fn greedy_decode(&self, src: &[usize], max_len: usize) -> Vec<usize> {
        let mut cx = EagerExec::new();
        let mut out = Vec::new();
        for _ in 0..max_len {
            cx.reset();
            let mut tgt_in = vec![BOS];
            tgt_in.extend_from_slice(&out);
            let logits = self.forward(&mut cx, &[src.to_vec()], &[tgt_in.clone()]);
            let t = tgt_in.len();
            let last = cx.value(logits).slice_axis(1, t - 1, t); // [1, 1, V]
            let v = self.config.tgt_vocab;
            let row = last.reshape(&[1, v]).expect("logit row");
            let next = row.argmax_rows()[0];
            if next == EOS {
                break;
            }
            out.push(next);
        }
        out
    }

    /// Validating variant of [`Transformer::greedy_decode`] for serving:
    /// rejects out-of-vocabulary source token ids instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfRange`] for the first source id at
    /// or beyond `src_vocab`.
    pub fn try_greedy_decode(
        &self,
        src: &[usize],
        max_len: usize,
    ) -> Result<Vec<usize>, TensorError> {
        for &t in src {
            if t >= self.config.src_vocab {
                return Err(TensorError::IndexOutOfRange {
                    index: t,
                    bound: self.config.src_vocab,
                });
            }
        }
        Ok(self.greedy_decode(src, max_len))
    }
}

/// Sinusoidal positional-encoding table `[max_len, d]`.
fn sinusoidal_pe(max_len: usize, d: usize) -> Tensor {
    let mut pe = Tensor::zeros(&[max_len, d]);
    for pos in 0..max_len {
        for i in 0..d {
            let angle = pos as f32 / 10000f32.powf((2 * (i / 2)) as f32 / d as f32);
            pe.set(
                &[pos, i],
                if i % 2 == 0 { angle.sin() } else { angle.cos() },
            );
        }
    }
    pe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(quadratic_rank: Option<usize>) -> TransformerConfig {
        TransformerConfig {
            src_vocab: 30,
            tgt_vocab: 32,
            d_model: 16,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            d_ff: 32,
            quadratic_rank,
            max_len: 16,
            dropout: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn forward_shapes_linear_and_quadratic() {
        for rank in [None, Some(3)] {
            let t = Transformer::new(tiny_config(rank));
            let mut g = Graph::new();
            let src = vec![vec![3, 4, 5], vec![6, 7, 8]];
            let tgt = vec![vec![1, 9, 10], vec![1, 11, 12]];
            let y = t.forward(&mut g, &src, &tgt);
            assert_eq!(g.value(y).shape().dims(), &[2, 3, 32], "{rank:?}");
        }
    }

    #[test]
    fn loss_is_finite_and_backpropagates() {
        let t = Transformer::new(tiny_config(Some(3)));
        let mut g = Graph::training(0);
        let src: Vec<usize> = vec![3, 4, 5];
        let tgt: Vec<usize> = vec![9, 10];
        let loss = t.loss(&mut g, &[(&src, &tgt)], 0.1);
        assert!(g.value(loss).data()[0].is_finite());
        g.backward(loss);
        let (lambda, _) = t.param_groups();
        assert!(!lambda.is_empty());
        // every lambda received gradient signal storage (possibly zero but allocated)
        for p in &lambda {
            assert_eq!(p.grad().numel(), p.numel());
        }
    }

    #[test]
    fn quadratic_projection_param_parity() {
        // at equal d_model, quadratic projections cost ≈ the same as linear
        // (n + k/(k+1) per output); the paper's savings come from shrinking
        // d_model/d_ff at equal BLEU
        let lin = Transformer::new(tiny_config(None));
        let quad = Transformer::new(tiny_config(Some(3)));
        let ratio = quad.param_count() as f64 / lin.param_count() as f64;
        assert!(ratio < 1.05 && ratio > 0.95, "ratio {ratio}");
    }

    #[test]
    fn causal_mask_blocks_future() {
        let t = Transformer::new(tiny_config(None));
        let m = t.causal_mask(&[vec![5, 6, 7]], 3);
        assert_eq!(m.get(&[0, 0, 1]), -1e9);
        assert_eq!(m.get(&[0, 1, 0]), 0.0);
        assert_eq!(m.get(&[0, 2, 2]), 0.0);
    }

    #[test]
    fn padding_mask_blocks_pad_keys() {
        let t = Transformer::new(tiny_config(None));
        let m = t.padding_mask(&[vec![5, PAD]], 2, 2);
        assert_eq!(m.get(&[0, 0, 1]), -1e9);
        assert_eq!(m.get(&[0, 1, 0]), 0.0);
    }

    #[test]
    fn greedy_decode_terminates() {
        let t = Transformer::new(tiny_config(Some(3)));
        let out = t.greedy_decode(&[3, 4, 5], 6);
        assert!(out.len() <= 6);
        assert!(out.iter().all(|&tok| tok < 32));
    }

    #[test]
    fn pe_table_is_bounded() {
        let pe = sinusoidal_pe(20, 16);
        assert!(pe.max() <= 1.0 && pe.min() >= -1.0);
        // distinct positions get distinct encodings
        let p0 = pe.slice_axis(0, 0, 1);
        let p1 = pe.slice_axis(0, 1, 2);
        assert!(!p0.allclose(&p1, 1e-3));
    }

    #[test]
    #[should_panic(expected = "divide by rank")]
    fn invalid_rank_divisibility_panics() {
        let mut cfg = tiny_config(Some(4)); // d=16 not divisible by 5
        cfg.quadratic_rank = Some(4);
        Transformer::new(cfg);
    }
}
