use qn_autograd::{Exec, Parameter, Var};
use qn_core::NeuronSpec;
use qn_nn::{
    visit_scoped, BatchNorm2d, Conv2d, Costs, GlobalAvgPool, Linear, Module, ParamVisitor,
};
use qn_tensor::{Conv2dSpec, Rng};

/// Which convolutional layers receive the configured neuron kind; the rest
/// fall back to linear convolutions. `FirstN` reproduces the paper's
/// "KNN-n" deployments (kervolution in the first `n` layers, Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeuronPlacement {
    /// Every 3×3 convolution uses the configured neuron.
    All,
    /// Only the first `n` 3×3 convolutions (in forward order) do.
    FirstN(usize),
    /// An explicit set of conv-layer indices (forward order, 0-based) —
    /// motivated by the paper's Fig. 7 observation that quadratic
    /// parameters matter in some layers and vanish in others.
    Layers(Vec<usize>),
}

/// Configuration for [`ResNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResNetConfig {
    /// Total depth: `6n + 2` for CIFAR-style nets (20, 32, 44, 56, 110) or
    /// 18 for the ImageNet-style variant.
    pub depth: usize,
    /// Stem width (the paper's CIFAR ResNets use 16; reduce for CPU runs).
    pub base_width: usize,
    /// Classifier classes.
    pub num_classes: usize,
    /// Neuron kind for 3×3 convolutions.
    pub neuron: NeuronSpec,
    /// Which layers receive that neuron kind.
    pub placement: NeuronPlacement,
    /// Weight-initialization seed.
    pub seed: u64,
}

/// Builder state threading the conv-layer counter through construction.
struct Builder {
    rng: Rng,
    neuron: NeuronSpec,
    placement: NeuronPlacement,
    conv_index: usize,
}

impl Builder {
    fn spec_for_next(&mut self) -> NeuronSpec {
        let use_neuron = match &self.placement {
            NeuronPlacement::All => true,
            NeuronPlacement::FirstN(n) => self.conv_index < *n,
            NeuronPlacement::Layers(set) => set.contains(&self.conv_index),
        };
        self.conv_index += 1;
        if use_neuron {
            self.neuron
        } else {
            NeuronSpec::Linear
        }
    }

    fn conv3x3(&mut self, in_c: usize, target: usize, stride: usize) -> (Box<dyn Module>, usize) {
        let spec = self.spec_for_next();
        spec.build_conv(in_c, target, Conv2dSpec::new(3, stride, 1), &mut self.rng)
    }
}

/// One pre-activation-free basic residual block (conv–bn–relu–conv–bn +
/// shortcut, then relu), as in the original CIFAR ResNet.
struct BasicBlock {
    conv1: Box<dyn Module>,
    bn1: BatchNorm2d,
    conv2: Box<dyn Module>,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    out_channels: usize,
}

impl BasicBlock {
    fn new(builder: &mut Builder, in_c: usize, target: usize, stride: usize) -> Self {
        let (conv1, mid) = builder.conv3x3(in_c, target, stride);
        let bn1 = BatchNorm2d::new(mid);
        let (conv2, out) = builder.conv3x3(mid, target, 1);
        let bn2 = BatchNorm2d::new(out);
        let shortcut = if stride != 1 || in_c != out {
            // projection shortcut stays linear (the paper replaces the 3×3
            // feature convolutions, not the 1×1 identity projections)
            let proj = Conv2d::new(
                in_c,
                out,
                Conv2dSpec::new(1, stride, 0),
                false,
                &mut builder.rng,
            );
            Some((proj, BatchNorm2d::new(out)))
        } else {
            None
        };
        BasicBlock {
            conv1,
            bn1,
            conv2,
            bn2,
            shortcut,
            out_channels: out,
        }
    }
}

impl BasicBlock {
    /// Int8 twin of this block, if every conv in it quantizes. Batch norms
    /// are snapshotted in f32 (see `BatchNorm2d::snapshot`), so the fused
    /// bn→(add)→relu inference tail survives quantization unchanged.
    fn quantize_block(&self) -> Option<QuantizedBasicBlock> {
        Some(QuantizedBasicBlock {
            conv1: self.conv1.quantized()?,
            bn1: self.bn1.snapshot(),
            conv2: self.conv2.quantized()?,
            bn2: self.bn2.snapshot(),
            shortcut: match &self.shortcut {
                Some((proj, bn)) => Some((proj.quantized()?, bn.snapshot())),
                None => None,
            },
        })
    }
}

impl Module for BasicBlock {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        // Both bn tails run through the fused elementwise chain: in
        // inference the eager path does bn1+relu in one activation pass and
        // bn2+residual+relu in another, instead of five passes; in training
        // the same calls decompose onto the tape (bit-identical values).
        let out = self.conv1.forward(g, x);
        let out = self.bn1.forward_fused(g, out, true, None);
        let out = self.conv2.forward(g, out);
        let sc = match &self.shortcut {
            Some((proj, bn)) => {
                let s = proj.forward(g, x);
                bn.forward(g, s)
            }
            None => x,
        };
        self.bn2.forward_fused(g, out, true, Some(sc))
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        visit_scoped(v, "conv1", |v| self.conv1.visit_params(v));
        visit_scoped(v, "bn1", |v| self.bn1.visit_params(v));
        visit_scoped(v, "conv2", |v| self.conv2.visit_params(v));
        visit_scoped(v, "bn2", |v| self.bn2.visit_params(v));
        if let Some((proj, bn)) = &self.shortcut {
            visit_scoped(v, "shortcut", |v| proj.visit_params(v));
            visit_scoped(v, "shortcut_bn", |v| bn.visit_params(v));
        }
    }

    fn costs(&self, input: &[usize]) -> Costs {
        let c1 = self.conv1.costs(input);
        let c2 = self.conv2.costs(&c1.output);
        let mut macs = c1.macs + c2.macs;
        if let Some((proj, _)) = &self.shortcut {
            macs += proj.costs(input).macs;
        }
        Costs {
            macs,
            output: c2.output,
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        self.quantize_block()
            .map(|b| Box::new(b) as Box<dyn Module>)
    }
}

/// [`BasicBlock`] with int8 convolutions and f32 batch-norm snapshots —
/// the residual wiring and fused inference tails are identical.
struct QuantizedBasicBlock {
    conv1: Box<dyn Module>,
    bn1: BatchNorm2d,
    conv2: Box<dyn Module>,
    bn2: BatchNorm2d,
    shortcut: Option<(Box<dyn Module>, BatchNorm2d)>,
}

impl QuantizedBasicBlock {
    /// A deep copy (children are already int8, so their `quantized()` is a
    /// snapshot clone).
    fn requantize(&self) -> Option<QuantizedBasicBlock> {
        Some(QuantizedBasicBlock {
            conv1: self.conv1.quantized()?,
            bn1: self.bn1.snapshot(),
            conv2: self.conv2.quantized()?,
            bn2: self.bn2.snapshot(),
            shortcut: match &self.shortcut {
                Some((proj, bn)) => Some((proj.quantized()?, bn.snapshot())),
                None => None,
            },
        })
    }
}

impl Module for QuantizedBasicBlock {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let out = self.conv1.forward(g, x);
        let out = self.bn1.forward_fused(g, out, true, None);
        let out = self.conv2.forward(g, out);
        let sc = match &self.shortcut {
            Some((proj, bn)) => {
                let s = proj.forward(g, x);
                bn.forward(g, s)
            }
            None => x,
        };
        self.bn2.forward_fused(g, out, true, Some(sc))
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        visit_scoped(v, "conv1", |v| self.conv1.visit_params(v));
        visit_scoped(v, "bn1", |v| self.bn1.visit_params(v));
        visit_scoped(v, "conv2", |v| self.conv2.visit_params(v));
        visit_scoped(v, "bn2", |v| self.bn2.visit_params(v));
        if let Some((proj, bn)) = &self.shortcut {
            visit_scoped(v, "shortcut", |v| proj.visit_params(v));
            visit_scoped(v, "shortcut_bn", |v| bn.visit_params(v));
        }
    }

    fn costs(&self, input: &[usize]) -> Costs {
        let c1 = self.conv1.costs(input);
        let c2 = self.conv2.costs(&c1.output);
        let mut macs = c1.macs + c2.macs;
        if let Some((proj, _)) = &self.shortcut {
            macs += proj.costs(input).macs;
        }
        Costs {
            macs,
            output: c2.output,
        }
    }

    fn weight_dtype(&self) -> &'static str {
        "int8"
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        self.requantize().map(|b| Box::new(b) as Box<dyn Module>)
    }
}

/// A residual network with pluggable neuron kinds.
///
/// `ResNet::cifar` builds the 6n+2-layer CIFAR family the paper evaluates in
/// Figs. 4, 5 and 7; `ResNet::imagenet18` builds the 4-stage ResNet-18 used
/// in the training-stability study (Fig. 6), adapted to small inputs
/// (3×3 stem, no initial max-pool).
pub struct ResNet {
    stem: Box<dyn Module>,
    stem_bn: BatchNorm2d,
    blocks: Vec<BasicBlock>,
    pool: GlobalAvgPool,
    classifier: Linear,
    config: ResNetConfig,
}

impl ResNet {
    /// Builds a CIFAR-style ResNet of depth `6n + 2`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not of the form `6n + 2` with `n >= 1`.
    pub fn cifar(config: ResNetConfig) -> Self {
        assert!(
            config.depth >= 8 && (config.depth - 2).is_multiple_of(6),
            "CIFAR ResNet depth must be 6n + 2, got {}",
            config.depth
        );
        let n = (config.depth - 2) / 6;
        let w = config.base_width;
        Self::build(config, &[(n, w, 1), (n, 2 * w, 2), (n, 4 * w, 2)])
    }

    /// Builds the 4-stage ResNet-18 variant (2 blocks per stage).
    pub fn imagenet18(config: ResNetConfig) -> Self {
        let w = config.base_width;
        Self::build(
            config,
            &[(2, w, 1), (2, 2 * w, 2), (2, 4 * w, 2), (2, 8 * w, 2)],
        )
    }

    fn build(config: ResNetConfig, stages: &[(usize, usize, usize)]) -> Self {
        let mut builder = Builder {
            rng: Rng::seed_from(config.seed),
            neuron: config.neuron,
            placement: config.placement.clone(),
            conv_index: 0,
        };
        let (stem, mut channels) = builder.conv3x3(3, config.base_width, 1);
        let stem_bn = BatchNorm2d::new(channels);
        let mut blocks = Vec::new();
        for &(count, target, first_stride) in stages {
            for b in 0..count {
                let stride = if b == 0 { first_stride } else { 1 };
                let block = BasicBlock::new(&mut builder, channels, target, stride);
                channels = block.out_channels;
                blocks.push(block);
            }
        }
        let classifier = Linear::new(channels, config.num_classes, true, &mut builder.rng);
        ResNet {
            stem,
            stem_bn,
            blocks,
            pool: GlobalAvgPool,
            classifier,
            config,
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Number of residual blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Parameters split into (quadratic `Λᵏ`, all others) for the dedicated
    /// low-learning-rate group.
    pub fn param_groups(&self) -> (Vec<Parameter>, Vec<Parameter>) {
        qn_core::split_lambda_params(self.params())
    }

    /// Per-block parameter snapshots `(linear_weights, lambda_values)` used
    /// by the Fig. 7 distribution study. Entries without quadratic neurons
    /// have an empty lambda vector.
    pub fn layer_parameter_snapshots(&self) -> Vec<(Vec<f32>, Vec<f32>)> {
        let mut out = Vec::new();
        let collect = |m: &dyn Module| -> (Vec<f32>, Vec<f32>) {
            let mut lin = Vec::new();
            let mut lam = Vec::new();
            for p in m.params() {
                let v = p.value();
                if p.name() == qn_core::LAMBDA_PARAM_NAME {
                    lam.extend_from_slice(v.data());
                } else if p.name() != "bn.gamma" && p.name() != "bn.beta" {
                    lin.extend_from_slice(v.data());
                }
            }
            (lin, lam)
        };
        out.push(collect(self.stem.as_ref()));
        for b in &self.blocks {
            out.push(collect(b.conv1.as_ref()));
            out.push(collect(b.conv2.as_ref()));
        }
        out
    }
}

impl Module for ResNet {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let mut v = self.stem.forward(g, x);
        v = self.stem_bn.forward_fused(g, v, true, None);
        for block in &self.blocks {
            v = block.forward(g, v);
        }
        v = self.pool.forward(g, v);
        self.classifier.forward(g, v)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        visit_scoped(v, "stem", |v| self.stem.visit_params(v));
        visit_scoped(v, "stem_bn", |v| self.stem_bn.visit_params(v));
        for (i, b) in self.blocks.iter().enumerate() {
            visit_scoped(v, &format!("block{i}"), |v| b.visit_params(v));
        }
        visit_scoped(v, "classifier", |v| self.classifier.visit_params(v));
    }

    fn costs(&self, input: &[usize]) -> Costs {
        let mut c = self.stem.costs(input);
        for b in &self.blocks {
            let nc = b.costs(&c.output);
            c.macs += nc.macs;
            c.output = nc.output;
        }
        let pool = self.pool.costs(&c.output);
        let cls = self.classifier.costs(&pool.output);
        Costs {
            macs: c.macs + cls.macs,
            output: cls.output,
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        let blocks = self
            .blocks
            .iter()
            .map(BasicBlock::quantize_block)
            .collect::<Option<Vec<_>>>()?;
        Some(Box::new(QuantizedResNet {
            stem: self.stem.quantized()?,
            stem_bn: self.stem_bn.snapshot(),
            blocks,
            pool: GlobalAvgPool,
            classifier: self.classifier.quantized()?,
        }))
    }
}

/// [`ResNet`] with int8 convolutions and classifier — what
/// [`Module::quantized`] on `ResNet` builds. Same topology, same
/// checkpoint paths (`stem`, `block{i}.conv1`, …), int8 weight storage.
struct QuantizedResNet {
    stem: Box<dyn Module>,
    stem_bn: BatchNorm2d,
    blocks: Vec<QuantizedBasicBlock>,
    pool: GlobalAvgPool,
    classifier: Box<dyn Module>,
}

impl Module for QuantizedResNet {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let mut v = self.stem.forward(g, x);
        v = self.stem_bn.forward_fused(g, v, true, None);
        for block in &self.blocks {
            v = block.forward(g, v);
        }
        v = self.pool.forward(g, v);
        self.classifier.forward(g, v)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        visit_scoped(v, "stem", |v| self.stem.visit_params(v));
        visit_scoped(v, "stem_bn", |v| self.stem_bn.visit_params(v));
        for (i, b) in self.blocks.iter().enumerate() {
            visit_scoped(v, &format!("block{i}"), |v| b.visit_params(v));
        }
        visit_scoped(v, "classifier", |v| self.classifier.visit_params(v));
    }

    fn costs(&self, input: &[usize]) -> Costs {
        let mut c = self.stem.costs(input);
        for b in &self.blocks {
            let nc = b.costs(&c.output);
            c.macs += nc.macs;
            c.output = nc.output;
        }
        let pool = self.pool.costs(&c.output);
        let cls = self.classifier.costs(&pool.output);
        Costs {
            macs: c.macs + cls.macs,
            output: cls.output,
        }
    }

    fn weight_dtype(&self) -> &'static str {
        "int8"
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        let blocks = self
            .blocks
            .iter()
            .map(QuantizedBasicBlock::requantize)
            .collect::<Option<Vec<_>>>()?;
        Some(Box::new(QuantizedResNet {
            stem: self.stem.quantized()?,
            stem_bn: self.stem_bn.snapshot(),
            blocks,
            pool: GlobalAvgPool,
            classifier: self.classifier.quantized()?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::Graph;
    use qn_tensor::Tensor;

    fn tiny_config(neuron: NeuronSpec) -> ResNetConfig {
        ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron,
            placement: NeuronPlacement::All,
            seed: 1,
        }
    }

    #[test]
    fn cifar_depths_have_right_block_counts() {
        for (depth, blocks) in [(8usize, 3usize), (20, 9), (32, 15), (56, 27), (110, 54)] {
            let net = ResNet::cifar(ResNetConfig {
                depth,
                ..tiny_config(NeuronSpec::Linear)
            });
            assert_eq!(net.block_count(), blocks, "depth {depth}");
        }
    }

    #[test]
    fn forward_shapes_linear_and_quadratic() {
        for neuron in [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 3 },
        ] {
            let net = ResNet::cifar(tiny_config(neuron));
            let mut rng = Rng::seed_from(2);
            let mut g = Graph::new();
            let x = g.leaf(Tensor::randn(&[2, 3, 16, 16], &mut rng));
            let y = net.forward(&mut g, x);
            assert_eq!(g.value(y).shape().dims(), &[2, 10], "{:?}", neuron);
        }
    }

    #[test]
    fn imagenet18_runs() {
        let net = ResNet::imagenet18(ResNetConfig {
            depth: 18,
            base_width: 4,
            num_classes: 20,
            neuron: NeuronSpec::Linear,
            placement: NeuronPlacement::All,
            seed: 3,
        });
        assert_eq!(net.block_count(), 8);
        let mut rng = Rng::seed_from(4);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[1, 3, 16, 16], &mut rng));
        let y = net.forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[1, 20]);
    }

    #[test]
    fn first_n_placement_limits_neuron_layers() {
        let knn3 = ResNet::cifar(ResNetConfig {
            placement: NeuronPlacement::FirstN(3),
            neuron: NeuronSpec::Kervolution {
                degree: 3,
                offset: 1.0,
            },
            ..tiny_config(NeuronSpec::Linear)
        });
        let all_linear = ResNet::cifar(tiny_config(NeuronSpec::Linear));
        // kervolution has the same parameter count as linear, so totals match
        assert_eq!(knn3.param_count(), all_linear.param_count());
        // but lambda split shows no quadratic params in either
        assert!(knn3.param_groups().0.is_empty());
    }

    #[test]
    fn quadratic_net_exposes_lambda_group() {
        let net = ResNet::cifar(tiny_config(NeuronSpec::EfficientQuadratic { rank: 3 }));
        let (lambda, other) = net.param_groups();
        assert!(!lambda.is_empty());
        assert!(lambda
            .iter()
            .all(|p| p.name() == qn_core::LAMBDA_PARAM_NAME));
        assert!(other.len() > lambda.len());
    }

    #[test]
    fn deeper_nets_cost_more() {
        let d8 = ResNet::cifar(tiny_config(NeuronSpec::Linear));
        let d20 = ResNet::cifar(ResNetConfig {
            depth: 20,
            ..tiny_config(NeuronSpec::Linear)
        });
        assert!(d20.param_count() > d8.param_count());
        let c8 = d8.costs(&[1, 3, 16, 16]);
        let c20 = d20.costs(&[1, 3, 16, 16]);
        assert!(c20.macs > c8.macs);
        assert_eq!(c8.output, vec![1, 10]);
    }

    #[test]
    fn snapshots_cover_all_conv_layers() {
        let net = ResNet::cifar(tiny_config(NeuronSpec::EfficientQuadratic { rank: 2 }));
        let snaps = net.layer_parameter_snapshots();
        assert_eq!(snaps.len(), 1 + 2 * net.block_count());
        for (lin, lam) in &snaps {
            assert!(!lin.is_empty());
            assert!(!lam.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "6n + 2")]
    fn invalid_depth_panics() {
        ResNet::cifar(ResNetConfig {
            depth: 21,
            ..tiny_config(NeuronSpec::Linear)
        });
    }
}
