//! Checkpoint round-trip properties: a model saved and loaded back —
//! whether by copying blobs ([`LoadMode::Copy`]) or borrowing them zero-copy
//! from the mapped file ([`LoadMode::Mapped`]) — must predict **bit
//! identically** to the fresh model it was saved from. Checked for every
//! neuron family, both model families (ResNet and Transformer), both
//! execution contexts (autograd tape and the eager serving arena), and at
//! one worker thread vs the full pool.

use proptest::prelude::*;
use qn_autograd::Graph;
use qn_core::neurons::{
    EfficientQuadraticLinear, FactorizedQuadraticLinear, GeneralQuadraticLinear, KervolutionLinear,
    LowRankQuadraticLinear, NoLinearQuadraticLinear, Quad1Linear, Quad2Linear,
};
use qn_core::NeuronSpec;
use qn_models::{
    InferenceSession, NeuronPlacement, ResNet, ResNetConfig, Transformer, TransformerConfig,
};
use qn_nn::{checkpoint, LoadMode, Module};
use qn_tensor::{Rng, Tensor};
use std::path::PathBuf;

fn tmp(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("qn_roundtrip_{tag}_{seed}.qnckpt"))
}

/// Forward pass on the autograd tape.
fn tape_forward(m: &dyn Module, x: &Tensor) -> Tensor {
    let mut g = Graph::new();
    let xv = g.leaf(x.clone());
    let y = m.forward(&mut g, xv);
    g.value(y).clone()
}

/// Forward pass on the eager serving arena.
fn eager_forward(m: &dyn Module, x: &Tensor) -> Tensor {
    InferenceSession::new(m).predict_batch(x)
}

/// The core property: `fresh` vs the same weights reloaded into the
/// differently-initialized `copied` (blob copies) and `mapped` (zero-copy
/// file windows) skeletons, on both exec contexts and both thread counts.
fn assert_roundtrip(
    tag: &str,
    seed: u64,
    fresh: &dyn Module,
    copied: &dyn Module,
    mapped: &dyn Module,
    x: &Tensor,
) -> Result<(), TestCaseError> {
    let path = tmp(tag, seed);
    checkpoint::save_module(fresh, &[], &path).expect("save");
    checkpoint::load_module(copied, &path, LoadMode::Copy).expect("load copy");
    checkpoint::load_module(mapped, &path, LoadMode::Mapped).expect("load mapped");

    let want_tape = tape_forward(fresh, x);
    prop_assert!(
        want_tape.bit_identical(&tape_forward(copied, x)),
        "{tag}: copy-loaded tape forward diverges"
    );
    prop_assert!(
        want_tape.bit_identical(&tape_forward(mapped, x)),
        "{tag}: mmap-loaded tape forward diverges"
    );

    let want_eager = eager_forward(fresh, x);
    prop_assert!(
        want_eager.bit_identical(&eager_forward(copied, x)),
        "{tag}: copy-loaded eager forward diverges"
    );
    prop_assert!(
        want_eager.bit_identical(&eager_forward(mapped, x)),
        "{tag}: mmap-loaded eager forward diverges"
    );
    // determinism contract: one worker thread must reproduce the full
    // pool bit for bit, also through mapped storage
    let sequential = qn_parallel::with_max_threads(1, || eager_forward(mapped, x));
    prop_assert!(
        want_eager.bit_identical(&sequential),
        "{tag}: single-threaded serve of the mmap-loaded model diverges"
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}

/// One constructor call per dense neuron family (covers the two families —
/// general and no-linear — that have no [`NeuronSpec`] conv deployment).
fn dense_families(n: usize, m: usize, k: usize, seed: u64) -> Vec<(&'static str, Box<dyn Module>)> {
    let mut rng = Rng::seed_from(seed);
    vec![
        (
            "efficient",
            Box::new(EfficientQuadraticLinear::new(n, m, k, &mut rng)) as Box<dyn Module>,
        ),
        (
            "efficient-scalar",
            Box::new(EfficientQuadraticLinear::new_scalar_output(
                n, m, k, &mut rng,
            )),
        ),
        (
            "general",
            Box::new(GeneralQuadraticLinear::new(n, m, &mut rng)),
        ),
        (
            "no-linear",
            Box::new(NoLinearQuadraticLinear::new(n, m, &mut rng)),
        ),
        (
            "low-rank",
            Box::new(LowRankQuadraticLinear::new(n, m, k, &mut rng)),
        ),
        (
            "factorized",
            Box::new(FactorizedQuadraticLinear::new(n, m, &mut rng)),
        ),
        ("quad1", Box::new(Quad1Linear::new(n, m, &mut rng))),
        ("quad2", Box::new(Quad2Linear::new(n, m, &mut rng))),
        (
            "kervolution",
            Box::new(KervolutionLinear::new(n, m, 0.5, 3, &mut rng)),
        ),
    ]
}

fn resnet_with(spec: NeuronSpec, seed: u64) -> ResNet {
    ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 4,
        num_classes: 10,
        neuron: spec,
        placement: NeuronPlacement::All,
        seed,
    })
}

fn transformer_with(rank: Option<usize>, seed: u64) -> Transformer {
    Transformer::new(TransformerConfig {
        src_vocab: 13,
        tgt_vocab: 11,
        d_model: 16,
        heads: 2,
        enc_layers: 1,
        dec_layers: 1,
        d_ff: 24,
        quadratic_rank: rank,
        max_len: 12,
        dropout: 0.0,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every dense neuron family survives save → load → predict untouched.
    #[test]
    fn dense_layers_roundtrip_bit_identically(
        n in 3usize..8, m in 1usize..4, seed in 0u64..1000,
    ) {
        let k = 1 + (seed as usize % 3);
        let fresh = dense_families(n, m, k, seed);
        let copied = dense_families(n, m, k, seed + 101);
        let mapped = dense_families(n, m, k, seed + 202);
        let mut rng = Rng::seed_from(seed ^ 0x5EED);
        let x = Tensor::randn(&[3, n], &mut rng);
        for (((tag, f), (_, c)), (_, p)) in fresh.iter().zip(&copied).zip(&mapped) {
            assert_roundtrip(tag, seed, f.as_ref(), c.as_ref(), p.as_ref(), &x)?;
        }
    }

    /// Every NeuronSpec deployment of the ResNet family round-trips.
    #[test]
    fn resnets_roundtrip_bit_identically(seed in 0u64..1000, batch in 1usize..3) {
        let specs = [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 3 },
            NeuronSpec::EfficientQuadraticScalar { rank: 3 },
            NeuronSpec::LowRank { rank: 2 },
            NeuronSpec::Quad1,
            NeuronSpec::Quad2,
            NeuronSpec::Factorized,
            NeuronSpec::Kervolution { degree: 3, offset: 1.0 },
        ];
        let mut rng = Rng::seed_from(seed ^ 0xCAFE);
        let x = Tensor::randn(&[batch, 3, 8, 8], &mut rng);
        for spec in specs {
            let fresh = resnet_with(spec, seed);
            let copied = resnet_with(spec, seed + 7);
            let mapped = resnet_with(spec, seed + 13);
            assert_roundtrip(&format!("resnet_{}", spec.label()), seed, &fresh, &copied, &mapped, &x)?;
        }
    }

    /// The Transformer family (linear and quadratic projections): tape
    /// forward plus the eager greedy decoder, fresh vs copy vs mmap.
    #[test]
    fn transformers_roundtrip_bit_identically(seed in 0u64..1000, rank_idx in 0usize..3) {
        // d_model 16 requires rank + 1 to divide 16
        let rank = [1usize, 3, 7][rank_idx];
        for (tag, rank) in [("linear", None), ("quadratic", Some(rank))] {
            let fresh = transformer_with(rank, seed);
            let copied = transformer_with(rank, seed + 7);
            let mapped = transformer_with(rank, seed + 13);
            let path = tmp(&format!("transformer_{tag}"), seed);
            checkpoint::save_visited(|v| fresh.visit_params(v), &[], &path).expect("save");
            checkpoint::load_visited(|v| copied.visit_params(v), &path, LoadMode::Copy)
                .expect("load copy");
            checkpoint::load_visited(|v| mapped.visit_params(v), &path, LoadMode::Mapped)
                .expect("load mapped");

            let mut rng = Rng::seed_from(seed ^ 0xBEEF);
            let src: Vec<usize> = (0..6).map(|_| 2 + rng.below(11)).collect();
            let tgt: Vec<usize> = (0..4).map(|_| 2 + rng.below(9)).collect();
            let forward = |t: &Transformer| {
                let mut g = Graph::new();
                let y = t.forward(&mut g, std::slice::from_ref(&src), std::slice::from_ref(&tgt));
                g.value(y).clone()
            };
            let want = forward(&fresh);
            prop_assert!(
                want.bit_identical(&forward(&copied)),
                "{tag}: copy-loaded transformer forward diverges"
            );
            prop_assert!(
                want.bit_identical(&forward(&mapped)),
                "{tag}: mmap-loaded transformer forward diverges"
            );

            let decoded = fresh.greedy_decode(&src, 10);
            prop_assert_eq!(&decoded, &copied.greedy_decode(&src, 10));
            prop_assert_eq!(&decoded, &mapped.greedy_decode(&src, 10));
            let sequential = qn_parallel::with_max_threads(1, || mapped.greedy_decode(&src, 10));
            prop_assert_eq!(&decoded, &sequential);
            let _ = std::fs::remove_file(&path);
        }
    }
}
