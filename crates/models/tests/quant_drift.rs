//! End-to-end int8-vs-f32 logit drift on ResNet-20: the whole quantized
//! inference stack (per-channel int8 conv/linear/quadratic weights,
//! on-the-fly activation quantization, f32 batch-norm islands) must keep
//! its logits close to the f32 exact path, keep the predicted class stable
//! on confident inputs, and stay bit-identical at every SIMD dispatch
//! level — integer accumulation makes the int8 tier *more* deterministic
//! than the f32 one, and this suite is the executable form of that claim.
//!
//! Own integration binary because `force_level` is process-global.

use proptest::prelude::*;
use qn_core::NeuronSpec;
use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use qn_tensor::{Rng, Tensor};
use std::sync::Mutex;

static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn resnet20(neuron: NeuronSpec, seed: u64) -> ResNet {
    ResNet::cifar(ResNetConfig {
        depth: 20,
        base_width: 4,
        num_classes: 10,
        neuron,
        placement: NeuronPlacement::All,
        seed,
    })
}

/// `(max |int8 − f32|, max |f32|)` over all logits of one batch.
fn logit_drift(net: &ResNet, x: &Tensor) -> (f32, f32) {
    let exact = InferenceSession::new(net).predict_batch(x);
    let quant = InferenceSession::quantized(net)
        .expect("ResNet quantizes end to end")
        .predict_batch(x);
    assert_eq!(exact.shape(), quant.shape());
    let drift = exact
        .data()
        .iter()
        .zip(quant.data())
        .map(|(e, q)| (e - q).abs())
        .fold(0.0f32, f32::max);
    let scale = exact.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    (drift, scale)
}

proptest! {
    // depth-20 forwards are heavy; a handful of cases over fresh weight
    // and input seeds is the coverage target, not case count
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Logit drift stays bounded for both neuron families over random
    /// weight seeds and inputs. Untrained random weights give logits of
    /// arbitrary magnitude, so the budget is **relative** to the f32
    /// logit scale: it fails loudly if a layer starts quantizing the
    /// wrong axis or dropping its scale (those blow the drift up by
    /// orders of magnitude, not percent).
    #[test]
    fn quantized_resnet20_logit_drift_is_bounded(
        net_seed in 0u64..1000, x_seed in 0u64..1000
    ) {
        for neuron in [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 2 },
        ] {
            let net = resnet20(neuron, net_seed);
            let mut rng = Rng::seed_from(x_seed);
            let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
            let (drift, scale) = logit_drift(&net, &x);
            let bound = 0.15 * (1.0 + scale);
            prop_assert!(drift < bound, "{neuron:?}: drift {drift} vs scale {scale}");
        }
    }

    /// The int8 tier is bit-identical across every reachable SIMD
    /// dispatch level (integer accumulation is associative; the f32
    /// epilogue has a fixed operation order).
    #[test]
    fn quantized_resnet20_is_bit_identical_across_levels(seed in 0u64..1000) {
        let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let net = resnet20(NeuronSpec::EfficientQuadratic { rank: 2 }, seed);
        let mut rng = Rng::seed_from(seed ^ 0xABCD);
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let twin = InferenceSession::quantized(&net).expect("quantizes");
        // hold one session across levels: the codes are fixed at
        // quantization time, so only kernel dispatch changes
        let mut session = twin;
        let prev = qn_simd::SimdLevel::active();
        let mut outputs: Vec<Tensor> = Vec::new();
        for level in qn_simd::available_levels() {
            qn_simd::force_level(level);
            outputs.push(session.predict_batch(&x));
        }
        qn_simd::force_level(prev);
        for pair in outputs.windows(2) {
            prop_assert!(
                pair[0].bit_identical(&pair[1]),
                "int8 logits changed across dispatch levels"
            );
        }
    }
}

/// Argmax stability on confident inputs: feed the f32 model's own most
/// confident direction back as input noise and check the predicted class
/// survives quantization. Plain test (not proptest) — one fixed seed pair
/// keeps it deterministic and fast.
#[test]
fn quantized_resnet20_keeps_confident_predictions() {
    let net = resnet20(NeuronSpec::EfficientQuadratic { rank: 2 }, 77);
    let mut rng = Rng::seed_from(78);
    let x = Tensor::randn(&[8, 3, 16, 16], &mut rng);
    let exact = InferenceSession::new(&net).predict_batch(&x);
    let quant = InferenceSession::quantized(&net)
        .expect("quantizes")
        .predict_batch(&x);
    let classes = exact.shape().dims()[1];
    let mut agree = 0usize;
    let mut total = 0usize;
    for b in 0..exact.shape().dims()[0] {
        let row = |t: &Tensor| {
            let d = &t.data()[b * classes..(b + 1) * classes];
            let (mut best, mut arg) = (f32::NEG_INFINITY, 0usize);
            let mut second = f32::NEG_INFINITY;
            for (i, &v) in d.iter().enumerate() {
                if v > best {
                    second = best;
                    best = v;
                    arg = i;
                } else if v > second {
                    second = v;
                }
            }
            (arg, best - second)
        };
        let (e_arg, e_margin) = row(&exact);
        let (q_arg, _) = row(&quant);
        // ties between near-equal logits may flip; confident rows must not
        if e_margin > 0.2 {
            total += 1;
            if e_arg == q_arg {
                agree += 1;
            }
        }
    }
    assert_eq!(
        agree,
        total,
        "quantization flipped {} of {} confident predictions",
        total - agree,
        total
    );
}
