//! End-to-end `Fast`-vs-`Exact` drift on a quadratic ResNet-20: the whole
//! inference stack (im2col GEMM, fused batch-norm/relu/residual chain,
//! quadratic-neuron weighted square sums, softmax) under the vector
//! profile must stay close to the exact profile's output — the executable
//! form of the determinism-tier contract. Own integration binary because
//! `force_profile` is process-global.

use qn_core::NeuronSpec;
use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use qn_tensor::{Rng, Tensor};
use std::sync::Mutex;

static PROFILE_LOCK: Mutex<()> = Mutex::new(());

fn resnet20(neuron: NeuronSpec) -> ResNet {
    ResNet::cifar(ResNetConfig {
        depth: 20,
        base_width: 8,
        num_classes: 10,
        neuron,
        placement: NeuronPlacement::All,
        seed: 33,
    })
}

fn drift_check(neuron: NeuronSpec, seed: u64) {
    let _g = PROFILE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let net = resnet20(neuron);
    let mut rng = Rng::seed_from(seed);
    let x = Tensor::randn(&[2, 3, 32, 32], &mut rng);

    let prev = qn_simd::force_profile(qn_simd::KernelProfile::Exact);
    let exact = InferenceSession::new(&net).predict_batch(&x);
    qn_simd::force_profile(qn_simd::KernelProfile::Fast);
    let fast = InferenceSession::new(&net).predict_batch(&x);
    qn_simd::force_profile(prev);

    assert_eq!(exact.shape(), fast.shape());
    for (f, e) in fast.data().iter().zip(exact.data()) {
        assert!(
            (f - e).abs() <= 1e-3 * (1.0 + e.abs()),
            "fast-profile logits drifted: {f} vs {e} (neuron {neuron:?})"
        );
    }
    // the Fast profile must still be deterministic run-to-run
    let prev = qn_simd::force_profile(qn_simd::KernelProfile::Fast);
    let again = InferenceSession::new(&net).predict_batch(&x);
    qn_simd::force_profile(prev);
    assert!(
        fast.bit_identical(&again),
        "Fast profile must be deterministic across runs"
    );
}

#[test]
fn quadratic_resnet20_fast_profile_tracks_exact() {
    drift_check(NeuronSpec::EfficientQuadratic { rank: 2 }, 7);
}

#[test]
fn linear_resnet20_fast_profile_tracks_exact() {
    drift_check(NeuronSpec::Linear, 8);
}
