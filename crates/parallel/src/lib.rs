//! # qn-parallel
//!
//! A `std`-only scoped worker pool: the workspace's parallel runtime.
//!
//! The build environment is offline, so instead of `rayon` this crate
//! vendors a minimal data-parallel core in the same spirit as the offline
//! shims under `crates/shims/`: a lazily-spawned global pool of worker
//! threads plus scoped fork–join primitives that may borrow stack data
//! ([`par_scope`], [`par_chunks_mut`], [`par_map`], [`par_join`]).
//!
//! ## Sizing
//!
//! The global pool is sized once, on first use, from (in precedence order):
//!
//! 1. [`configure_pool_threads`] — a programmatic override, honoured only
//!    before the pool has spawned (benchmarks use it to test oversubscribed
//!    configurations);
//! 2. the `QN_NUM_THREADS` environment variable (`QN_NUM_THREADS=1`
//!    disables parallelism entirely — every primitive runs inline);
//! 3. [`std::thread::available_parallelism`].
//!
//! [`with_max_threads`] additionally caps the *effective* parallelism for
//! the current thread for the duration of a closure, which is how the
//! determinism test suites compare 1-thread and N-thread execution inside
//! one process.
//!
//! ## Determinism contract
//!
//! The primitives only split work into **disjoint output regions**; they
//! never reduce across tasks in pool order. A kernel that accumulates
//! sequentially within each unit (e.g. one matmul output row) therefore
//! produces **bit-identical** results at any thread count. Every parallel
//! kernel in `qn-tensor`/`qn-autograd` is written in that per-unit
//! sequential-accumulation style, and the workspace's property suites
//! assert the bit-equality.
//!
//! ## Nesting
//!
//! Work executed *inside* a pool task sees [`num_threads`]`() == 1`: nested
//! parallel calls run inline rather than oversubscribing the pool. The
//! coarsest enclosing region (e.g. a sharded `predict_batch`) gets the
//! pool; the kernels under it stay sequential.
//!
//! # Example
//!
//! ```
//! let mut out = vec![0.0f32; 8];
//! // double each unit of 2 elements; disjoint chunks may run on the pool
//! qn_parallel::par_chunks_mut(&mut out, 2, |unit, chunk| {
//!     for (j, v) in chunk.iter_mut().enumerate() {
//!         *v = (unit * 2 + j) as f32 * 2.0;
//!     }
//! });
//! assert_eq!(out[7], 14.0);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Minimum element count before a hot kernel should fan out to the pool;
/// below this the fork–join overhead dominates the work itself. The single
/// source of truth for every `par_chunks_mut_min` gate in the workspace
/// (`qn-tensor` elementwise/conv/pool kernels, `qn-autograd` fused kernels).
pub const PAR_MIN_ELEMS: usize = 16 * 1024;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Job queue + wakeup pair shared by the workers. The `expect("…
/// poisoned")` calls on this queue and on [`Latch`] state can only fire on
/// mutex poisoning, which is unreachable by construction: every task body
/// runs under `catch_unwind`, so no panic ever unwinds while a pool lock
/// is held.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static CONFIGURED: Mutex<Option<usize>> = Mutex::new(None);

thread_local! {
    /// `true` while this thread is executing a pool task (worker threads, or
    /// the submitting thread while it helps drain the queue): nested
    /// parallel calls then run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread cap installed by [`with_max_threads`].
    static MAX_THREADS: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn env_threads() -> Option<usize> {
    std::env::var("QN_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|w| w.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.job_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        job();
    }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = CONFIGURED
            .lock()
            .expect("pool config poisoned")
            .take()
            .or_else(env_threads)
            .unwrap_or_else(default_threads)
            .max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        });
        // The submitting thread participates in every scope, so `threads`-way
        // parallelism needs `threads - 1` workers.
        for i in 0..threads.saturating_sub(1) {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("qn-parallel-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, threads }
    })
}

/// Sizes the global pool to `threads` if — and only if — it has not spawned
/// yet. Returns `false` when the pool already exists (the call had no
/// effect). Takes precedence over `QN_NUM_THREADS`.
///
/// Intended for benchmarks that want a fixed pool size regardless of the
/// host; library code should rely on the environment-driven default.
pub fn configure_pool_threads(threads: usize) -> bool {
    if POOL.get().is_some() {
        return false;
    }
    *CONFIGURED.lock().expect("pool config poisoned") = Some(threads.max(1));
    POOL.get().is_none()
}

/// The global pool's total thread count (workers + the submitting thread),
/// ignoring nesting and [`with_max_threads`] caps. Forces pool
/// initialization.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a pool worker thread on first-use
/// initialization (resource exhaustion — the pool cannot degrade safely
/// once callers have observed its size).
pub fn pool_threads() -> usize {
    pool().threads
}

/// The parallelism available to the **current** thread right now: the pool
/// size, capped by an enclosing [`with_max_threads`], and `1` inside a pool
/// task (nested work runs inline).
///
/// # Panics
///
/// Same as [`pool_threads`]: worker spawn failure on first-use pool
/// initialization.
pub fn num_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    let cap = MAX_THREADS.with(|m| m.get());
    pool().threads.min(cap).max(1)
}

/// Runs `f` with this thread's effective parallelism capped at `cap`
/// (floored to 1). Restores the previous cap afterwards, also on panic.
///
/// This is how test suites compare sequential and parallel execution of the
/// same kernel inside one process:
/// `with_max_threads(1, || kernel())` vs `kernel()`.
pub fn with_max_threads<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.with(|m| m.set(self.0));
        }
    }
    let prev = MAX_THREADS.with(|m| m.replace(cap.max(1)));
    let _restore = Restore(prev);
    f()
}

struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch poisoned");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("latch poisoned").remaining == 0
    }

    fn wait(&self) {
        let mut state = self.state.lock().expect("latch poisoned");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch poisoned");
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.state.lock().expect("latch poisoned").panic.take()
    }
}

fn run_as_worker(job: Job) {
    let was = IN_WORKER.with(|w| w.replace(true));
    job();
    IN_WORKER.with(|w| w.set(was));
}

/// Runs every task to completion, using the global pool when the current
/// thread's effective parallelism allows it; the calling thread participates
/// instead of blocking idle. Returns only after **all** tasks finished.
///
/// Tasks may borrow stack data (`'scope` need not be `'static`): the
/// blocking join is what makes that sound. If any task panics, the panic is
/// re-raised on the calling thread after the scope completes.
///
/// This is the low-level primitive under [`par_chunks_mut`], [`par_map`]
/// and [`par_join`]; kernels normally want one of those instead.
///
/// # Panics
///
/// Re-raises the **first** task panic on the calling thread once every
/// task has finished (tasks are wrapped in `catch_unwind`, so one panic
/// never strands the latch or poisons the queue). Also panics on
/// first-use pool initialization if a worker thread cannot be spawned
/// (see [`pool_threads`]).
pub fn par_scope<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    if tasks.len() == 1 || num_threads() <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let pool = pool();
    let latch = Arc::new(Latch::new(tasks.len()));
    {
        let mut queue = pool.shared.queue.lock().expect("pool queue poisoned");
        for task in tasks {
            // SAFETY: `par_scope` blocks until the latch has counted every
            // task as complete (the wrapper below always reports, even on
            // panic), so borrows captured for `'scope` strictly outlive the
            // task's execution.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'scope>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(task)
            };
            let latch = Arc::clone(&latch);
            queue.push_back(Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                latch.complete(outcome.err());
            }));
        }
        pool.shared.job_ready.notify_all();
    }
    // Participate: drain queued jobs until this scope's tasks are all done.
    // Any job still in the queue is safe to run here — at worst it belongs
    // to another thread's scope, which is just useful work.
    while !latch.is_done() {
        let job = pool
            .shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .pop_front();
        match job {
            Some(job) => run_as_worker(job),
            None => {
                latch.wait();
                break;
            }
        }
    }
    if let Some(panic) = latch.take_panic() {
        resume_unwind(panic);
    }
}

/// Splits `data` into consecutive units of `unit_len` elements (the last may
/// be shorter) and calls `f(unit_index, unit)` for every unit, distributing
/// contiguous **bands** of units across the pool.
///
/// Each unit is written by exactly one task and `f` runs sequentially within
/// a unit, so results are bit-identical at any thread count as long as `f`
/// itself is deterministic per unit. This is the workhorse under the matmul
/// family (one unit = one output row) and the conv/pool kernels (one unit =
/// one output image plane).
///
/// # Panics
///
/// Panics if `unit_len == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], unit_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit_len > 0, "unit_len must be positive");
    let units = data.len().div_ceil(unit_len);
    let threads = num_threads();
    if threads <= 1 || units <= 1 {
        for (i, chunk) in data.chunks_mut(unit_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let bands = threads.min(units);
    let units_per_band = units.div_ceil(bands);
    let band_len = units_per_band * unit_len;
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(bands);
    for (band_idx, band) in data.chunks_mut(band_len).enumerate() {
        tasks.push(Box::new(move || {
            for (j, chunk) in band.chunks_mut(unit_len).enumerate() {
                f(band_idx * units_per_band + j, chunk);
            }
        }));
    }
    par_scope(tasks);
}

/// Like [`par_chunks_mut`], but stays on the calling thread when
/// `data.len() < min_len` — the gate hot kernels use so that tiny tensors
/// (a `[32, 10]` softmax in a training loop, a narrow pooling plane) never
/// pay the fork–join overhead. Semantics are otherwise identical, including
/// bit-identical results either way.
///
/// # Panics
///
/// Panics if `unit_len == 0`.
pub fn par_chunks_mut_min<T, F>(data: &mut [T], unit_len: usize, min_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit_len > 0, "unit_len must be positive");
    if data.len() >= min_len {
        par_chunks_mut(data, unit_len, f);
    } else {
        for (i, chunk) in data.chunks_mut(unit_len).enumerate() {
            f(i, chunk);
        }
    }
}

/// Like [`par_chunks_mut`] but splits **two** slices in lockstep: unit `i`
/// of `a` (length `unit_a`) and unit `i` of `b` (length `unit_b`) are handed
/// to the same call. Used by kernels with a second per-unit output (e.g.
/// max-pooling's argmax indices).
///
/// # Panics
///
/// Panics if either unit length is zero or the slices disagree on the number
/// of units.
pub fn par_chunks_mut_pair<A, B, F>(a: &mut [A], unit_a: usize, b: &mut [B], unit_b: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(unit_a > 0 && unit_b > 0, "unit lengths must be positive");
    let units = a.len().div_ceil(unit_a);
    assert_eq!(
        units,
        b.len().div_ceil(unit_b),
        "slices disagree on unit count"
    );
    let threads = num_threads();
    if threads <= 1 || units <= 1 {
        for (i, (ca, cb)) in a.chunks_mut(unit_a).zip(b.chunks_mut(unit_b)).enumerate() {
            f(i, ca, cb);
        }
        return;
    }
    let bands = threads.min(units);
    let units_per_band = units.div_ceil(bands);
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(bands);
    let band_iter = a
        .chunks_mut(units_per_band * unit_a)
        .zip(b.chunks_mut(units_per_band * unit_b));
    for (band_idx, (band_a, band_b)) in band_iter.enumerate() {
        tasks.push(Box::new(move || {
            let chunks = band_a.chunks_mut(unit_a).zip(band_b.chunks_mut(unit_b));
            for (j, (ca, cb)) in chunks.enumerate() {
                f(band_idx * units_per_band + j, ca, cb);
            }
        }));
    }
    par_scope(tasks);
}

/// Like [`par_chunks_mut_pair`], gated to stay on the calling thread when
/// `a.len() < min_len` (see [`par_chunks_mut_min`]).
///
/// # Panics
///
/// As [`par_chunks_mut_pair`].
pub fn par_chunks_mut_pair_min<A, B, F>(
    a: &mut [A],
    unit_a: usize,
    b: &mut [B],
    unit_b: usize,
    min_len: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    if a.len() >= min_len {
        par_chunks_mut_pair(a, unit_a, b, unit_b, f);
    } else {
        assert!(unit_a > 0 && unit_b > 0, "unit lengths must be positive");
        assert_eq!(
            a.len().div_ceil(unit_a),
            b.len().div_ceil(unit_b),
            "slices disagree on unit count"
        );
        for (i, (ca, cb)) in a.chunks_mut(unit_a).zip(b.chunks_mut(unit_b)).enumerate() {
            f(i, ca, cb);
        }
    }
}

/// Splits `0..n` into `parts` contiguous half-open ranges whose lengths
/// differ by at most one (the first `n % parts` ranges take the extra
/// element). Shared by every data-parallel call site — batched inference
/// sharding and gradient-accumulation sharding — so all of them agree on
/// shard boundaries, which the determinism guarantees depend on. Empty
/// ranges are omitted, so fewer than `parts` ranges come back when
/// `n < parts`.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn split_evenly(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::with_capacity(parts.min(n));
    split_evenly_into(n, parts, &mut ranges);
    ranges
}

/// [`split_evenly`] into a caller-provided `Vec` (cleared first, capacity
/// reused) — lets a steady-state serving loop shard every batch without
/// reallocating the range list.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn split_evenly_into(n: usize, parts: usize, out: &mut Vec<(usize, usize)>) {
    assert!(parts > 0, "parts must be positive");
    out.clear();
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len > 0 {
            out.push((start, start + len));
            start += len;
        }
    }
}

/// Maps `f` over `items` on the pool, returning results **in input order**
/// (task completion order never leaks into the output). One task per item —
/// intended for coarse work such as per-shard model execution, not for
/// per-element maps.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (via [`par_scope`]); the
/// internal "every slot filled" expectation cannot fire otherwise, since
/// a panicking task re-raises before results are unwrapped.
pub fn par_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    {
        let f = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(n);
        for (i, (item, slot)) in items.into_iter().zip(results.iter_mut()).enumerate() {
            tasks.push(Box::new(move || {
                *slot = Some(f(i, item));
            }));
        }
        par_scope(tasks);
    }
    results
        .into_iter()
        .map(|r| r.expect("par_scope runs every task"))
        .collect()
}

/// Runs two closures, potentially in parallel, and returns both results.
///
/// # Panics
///
/// Propagates the first panic raised by either closure (via
/// [`par_scope`]), after both have finished or unwound.
pub fn par_join<RA, RB, FA, FB>(a: FA, b: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| ra = Some(a())), Box::new(|| rb = Some(b()))];
        par_scope(tasks);
    }
    (
        ra.expect("par_scope runs every task"),
        rb.expect("par_scope runs every task"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_matches_sequential() {
        let kernel = |data: &mut [f32]| {
            par_chunks_mut(data, 3, |unit, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (unit * 3 + j) as f32 * 1.5 + unit as f32;
                }
            });
        };
        let mut parallel = vec![0.0f32; 100];
        kernel(&mut parallel);
        let mut sequential = vec![0.0f32; 100];
        with_max_threads(1, || kernel(&mut sequential));
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn par_chunks_mut_covers_ragged_tail() {
        let mut data = vec![0usize; 10]; // 4 units of 3, last has 1 element
        par_chunks_mut(&mut data, 3, |unit, chunk| {
            for v in chunk.iter_mut() {
                *v = unit + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }

    #[test]
    fn par_chunks_mut_pair_stays_in_lockstep() {
        let mut a = vec![0usize; 12];
        let mut b = vec![0usize; 6];
        par_chunks_mut_pair(&mut a, 4, &mut b, 2, |unit, ca, cb| {
            for v in ca.iter_mut() {
                *v = unit;
            }
            for v in cb.iter_mut() {
                *v = unit * 10;
            }
        });
        assert_eq!(a, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(b, vec![0, 0, 10, 10, 20, 20]);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(items, |i, x| {
            assert_eq!(i, x);
            x * x
        });
        let expect: Vec<usize> = (0..64).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_join_returns_both() {
        let (a, b) = par_join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        let hits = AtomicUsize::new(0);
        let mut outer = vec![0u8; 4];
        par_chunks_mut(&mut outer, 1, |_, _| {
            // inside a pool task (or the helping caller) nesting is inline
            let mut inner = vec![0u8; 8];
            par_chunks_mut(&mut inner, 1, |_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn with_max_threads_caps_and_restores() {
        let before = num_threads();
        with_max_threads(1, || {
            assert_eq!(num_threads(), 1);
        });
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn panic_in_task_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 8];
            par_chunks_mut(&mut data, 1, |i, _| {
                if i == 5 {
                    panic!("boom in unit 5");
                }
            });
        });
        assert!(result.is_err(), "panic must reach the caller");
    }

    #[test]
    fn split_evenly_covers_range_without_gaps() {
        assert_eq!(split_evenly(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(split_evenly(3, 8), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(split_evenly(0, 3), Vec::<(usize, usize)>::new());
        let ranges = split_evenly(97, 5);
        assert_eq!(ranges.first().map(|r| r.0), Some(0));
        assert_eq!(ranges.last().map(|r| r.1), Some(97));
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
        }
    }

    #[test]
    fn min_gated_variants_match_ungated() {
        let mut a = vec![0usize; 9];
        par_chunks_mut_min(&mut a, 2, usize::MAX, |i, c| {
            c.iter_mut().for_each(|v| *v = i)
        });
        assert_eq!(a, vec![0, 0, 1, 1, 2, 2, 3, 3, 4]);
        let mut b = vec![0usize; 9];
        par_chunks_mut_min(&mut b, 2, 0, |i, c| c.iter_mut().for_each(|v| *v = i));
        assert_eq!(a, b);
    }

    #[test]
    fn scope_of_one_task_runs_inline() {
        let mut hit = false;
        par_scope(vec![Box::new(|| hit = true)]);
        assert!(hit);
    }
}
