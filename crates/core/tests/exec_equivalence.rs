//! Tape vs tape-free equivalence properties for every neuron family.
//!
//! Each property builds a layer with randomized shape/rank, runs the same
//! forward pass on the autograd tape ([`Graph`]) and on the eager arena
//! ([`EagerExec`]), and asserts the outputs agree within 1e-6 — the
//! contract the dual-mode [`qn_nn::Module`] API relies on.

use proptest::prelude::*;
use qn_autograd::{EagerExec, Exec, Graph};
use qn_core::neurons::{
    EfficientQuadraticConv2d, EfficientQuadraticLinear, FactorizedQuadraticLinear,
    GeneralQuadraticLinear, KervolutionLinear, LowRankQuadraticLinear, NoLinearQuadraticLinear,
    PatchConv2d, Quad1Linear, Quad2Linear,
};
use qn_core::NeuronSpec;
use qn_nn::Module;
use qn_tensor::{Conv2dSpec, Rng, Tensor};

/// Runs `layer` on both execution contexts and asserts equal outputs.
fn assert_equivalent(layer: &dyn Module, x: &Tensor) -> Result<(), TestCaseError> {
    let mut g = Graph::new();
    let xv = g.leaf(x.clone());
    let tv = layer.forward(&mut g, xv);
    let taped = g.value(tv);

    let mut e = EagerExec::new();
    let xe = e.leaf(x.clone());
    let ev = layer.forward(&mut e, xe);
    let eager = e.value(ev);

    prop_assert_eq!(taped.shape().dims(), eager.shape().dims());
    prop_assert!(
        taped.allclose(eager, 1e-6),
        "tape and eager outputs diverge beyond 1e-6"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Family 1 — the paper's efficient quadratic neuron (vectorized).
    #[test]
    fn efficient_quadratic_matches(
        n in 3usize..12, m in 1usize..4, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let k = 1 + (seed as usize % n.min(4));
        let layer = EfficientQuadraticLinear::new(n, m, k, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// Family 1b — the scalar-output ablation of the proposed neuron.
    #[test]
    fn efficient_quadratic_scalar_matches(
        n in 3usize..12, m in 1usize..4, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let k = 1 + (seed as usize % n.min(4));
        let layer = EfficientQuadraticLinear::new_scalar_output(n, m, k, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// Family 2 — the general quadratic neuron (full n×n matrix).
    #[test]
    fn general_quadratic_matches(
        n in 2usize..8, m in 1usize..4, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let layer = GeneralQuadraticLinear::new(n, m, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// Family 3 — the linear-term-free variant.
    #[test]
    fn no_linear_quadratic_matches(
        n in 2usize..8, m in 1usize..4, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let layer = NoLinearQuadraticLinear::new(n, m, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// Family 4 — the unsymmetric low-rank neuron.
    #[test]
    fn low_rank_matches(
        n in 3usize..12, m in 1usize..4, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let k = 1 + (seed as usize % n.min(4));
        let layer = LowRankQuadraticLinear::new(n, m, k, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// Family 5 — the quadratic-residual neuron.
    #[test]
    fn factorized_matches(
        n in 2usize..12, m in 1usize..5, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let layer = FactorizedQuadraticLinear::new(n, m, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// Family 6 — Quad-1.
    #[test]
    fn quad1_matches(
        n in 2usize..12, m in 1usize..5, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let layer = Quad1Linear::new(n, m, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// Family 7 — Quad-2.
    #[test]
    fn quad2_matches(
        n in 2usize..12, m in 1usize..5, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let layer = Quad2Linear::new(n, m, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// Family 8 — polynomial kervolution.
    #[test]
    fn kervolution_matches(
        n in 2usize..12, m in 1usize..5, p in 1i32..5, seed in 0u64..1000, batch in 1usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let layer = KervolutionLinear::new(n, m, 0.5, p, &mut rng);
        let x = Tensor::randn(&[batch, n], &mut rng);
        assert_equivalent(&layer, &x)?;
    }

    /// The proposed neuron's convolutional form (PatchConv2d deployment).
    #[test]
    fn efficient_quadratic_conv_matches(
        c in 1usize..4, filters in 1usize..3, res in 4usize..8, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let spec = Conv2dSpec::new(3, 1, 1);
        let k = 1 + (seed as usize % 4);
        let conv = EfficientQuadraticConv2d::efficient(c, filters, k, spec, &mut rng);
        let x = Tensor::randn(&[1, c, res, res], &mut rng);
        assert_equivalent(&conv, &x)?;
    }

    /// PatchConv2d around an arbitrary dense family, plus strided geometry.
    #[test]
    fn patch_conv_matches(
        c in 1usize..4, units in 1usize..4, stride in 1usize..3, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let spec = Conv2dSpec::new(3, stride, 1);
        let n = spec.patch_len(c);
        let conv = PatchConv2d::new(Quad2Linear::new(n, units, &mut rng), c, spec);
        let x = Tensor::randn(&[2, c, 6, 6], &mut rng);
        assert_equivalent(&conv, &x)?;
    }

    /// Every NeuronSpec-built conv agrees between the two paths.
    #[test]
    fn all_specs_match(seed in 0u64..1000, target in 4usize..10) {
        let mut rng = Rng::seed_from(seed);
        let conv = Conv2dSpec::new(3, 1, 1);
        let specs = [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 3 },
            NeuronSpec::EfficientQuadraticScalar { rank: 3 },
            NeuronSpec::LowRank { rank: 2 },
            NeuronSpec::Quad1,
            NeuronSpec::Quad2,
            NeuronSpec::Factorized,
            NeuronSpec::Kervolution { degree: 3, offset: 1.0 },
        ];
        for spec in specs {
            let (layer, _) = spec.build_conv(2, target, conv, &mut rng);
            let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
            assert_equivalent(layer.as_ref(), &x)?;
        }
    }
}
