//! Gradient checks of the efficient quadratic neuron's four parameter
//! factors `Q`, `Λ`, `w`, `b` against `qn_autograd::gradcheck`, at the
//! 1e-3 tolerance the tape should sustain: the loss is polynomial of degree
//! ≤ 2 in every factor, so central finite differences are exact up to f32
//! rounding.

use qn_autograd::{gradcheck_multi, Graph, Var};
use qn_core::neurons::EfficientQuadraticLinear;
use qn_nn::Module;
use qn_tensor::{Rng, Tensor};

const N: usize = 3; // inputs
const M: usize = 2; // neurons
const K: usize = 2; // rank

/// The layer's forward pass written over explicit factor vars
/// (`vars = [q, lambda, w, b]`) so `gradcheck` can differentiate with
/// respect to each factor. Mirrors
/// `EfficientQuadraticLinear::forward_parts`; `factors_forward_matches_layer`
/// below pins it to the real layer.
fn forward_from_factors(g: &mut Graph, x: &Tensor, vars: &[Var]) -> Var {
    let (q, lam, w, b) = (vars[0], vars[1], vars[2], vars[3]);
    let xv = g.leaf(x.clone());
    let f = g.matmul_transb(xv, q); // [B, m·k]
    let batch = g.value(f).shape().dim(0);
    let f3 = g.reshape(f, &[batch, M, K]);
    let fsq = g.square(f3);
    let weighted = g.mul_bcast(fsq, lam);
    let y2 = g.sum_axis(weighted, 2); // [B, m]
    let xw = g.matmul_transb(xv, w);
    let y1 = g.add_bcast(xw, b);
    let y = g.add(y1, y2);
    let y3 = g.reshape(y, &[batch, M, 1]);
    let out3 = g.concat(&[y3, f3], 2); // [B, m, k+1]
    g.reshape(out3, &[batch, M * (K + 1)])
}

fn factor_tensors(rng: &mut Rng) -> (Tensor, Tensor, Tensor, Tensor) {
    let layer = EfficientQuadraticLinear::new(N, M, K, rng);
    let p = layer.params();
    // params() returns [q, lambda, w, b]
    (p[0].value(), p[1].value(), p[2].value(), p[3].value())
}

/// The factor-var graph above computes exactly what the layer computes.
#[test]
fn factors_forward_matches_layer() {
    let mut rng = Rng::seed_from(11);
    let (q, lam, w, b) = factor_tensors(&mut rng);
    let x = Tensor::randn(&[2, N], &mut rng);

    let layer =
        EfficientQuadraticLinear::from_factors(q.clone(), lam.clone(), w.clone(), b.clone(), true);
    let expected = {
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        g.value(y).clone()
    };

    let mut g = Graph::new();
    let vars: Vec<Var> = [&q, &lam, &w, &b]
        .iter()
        .map(|t| g.leaf((*t).clone()))
        .collect();
    let out = forward_from_factors(&mut g, &x, &vars);
    assert!(g.value(out).allclose(&expected, 1e-6));
}

/// `qn_autograd::gradcheck` (multi-input form) accepts the tape's gradients
/// for all four factors within 1e-3.
#[test]
fn gradcheck_accepts_q_lambda_w_b_at_1e3() {
    let mut rng = Rng::seed_from(12);
    let (q, lam, w, b) = factor_tensors(&mut rng);
    let x = Tensor::randn(&[2, N], &mut rng);

    assert!(gradcheck_multi(
        |g, vars| {
            let out = forward_from_factors(g, &x, vars);
            // weight channels unevenly so no gradient cancels by symmetry
            let mask = g.leaf(Tensor::from_fn(&[2, M * (K + 1)], |i| {
                0.25 + 0.125 * i as f32
            }));
            let prod = g.mul(out, mask);
            g.sum_all(prod)
        },
        &[q, lam, w, b],
        5e-2,
        1e-3,
    ));
}

/// The gradients `Graph::backward` flushes into `Parameter` storage agree
/// with central finite differences on each of `Q`, `Λ`, `w`, `b` within
/// 1e-3 — the same property exercised through the layer's own tape path.
#[test]
fn tape_parameter_gradients_match_finite_differences_at_1e3() {
    let mut rng = Rng::seed_from(13);
    let layer = EfficientQuadraticLinear::new(N, M, K, &mut rng);
    let x = Tensor::randn(&[2, N], &mut rng);

    let loss_value = |layer: &EfficientQuadraticLinear| -> f32 {
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        let s = g.sum_all(y);
        g.value(s).data()[0]
    };

    for p in layer.params() {
        p.zero_grad();
    }
    let mut g = Graph::new();
    let xv = g.leaf(x.clone());
    let y = layer.forward(&mut g, xv);
    let s = g.sum_all(y);
    g.backward(s);

    let eps = 5e-2f32;
    for p in layer.params() {
        let analytic = p.grad();
        let base = p.value();
        for i in 0..base.numel() {
            let mut plus = base.clone();
            plus.data_mut()[i] += eps;
            p.set_value(plus);
            let fp = loss_value(&layer);
            let mut minus = base.clone();
            minus.data_mut()[i] -= eps;
            p.set_value(minus);
            let fm = loss_value(&layer);
            p.set_value(base.clone());
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.data()[i];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() <= 1e-3 * denom,
                "param {} index {i}: analytic {a} vs numeric {numeric}",
                p.name()
            );
        }
    }
}
