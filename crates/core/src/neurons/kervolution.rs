use crate::complexity::NeuronFamily;
use qn_autograd::{Exec, Parameter, Var};
use qn_nn::{kaiming_normal, Costs, Module, ParamVisitor};
use qn_tensor::Rng;

/// The polynomial kervolutional neuron `y = (wᵀx + c)ᵖ` of Wang et al.
/// (CVPR 2019) \[14\].
///
/// Adds **no** parameters over a linear neuron — the appeal the paper's
/// §IV-A2 discusses — but the fixed polynomial non-linearity compounds with
/// depth: deploying it in many layers (KNN-11, KNN-15 in Fig. 6) makes
/// activations and gradients grow as `p`-th powers and destabilizes
/// training. The training-stability experiment reproduces exactly that.
#[derive(Debug)]
pub struct KervolutionLinear {
    w: Parameter,
    c: f32,
    p: i32,
    n: usize,
    m: usize,
}

impl KervolutionLinear {
    /// Creates a layer of `units` kervolutional neurons with kernel offset
    /// `c` and polynomial degree `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1`.
    pub fn new(in_features: usize, units: usize, c: f32, p: i32, rng: &mut Rng) -> Self {
        assert!(p >= 1, "polynomial degree must be >= 1, got {p}");
        KervolutionLinear {
            w: Parameter::named(
                "kerv.w",
                kaiming_normal(&[units, in_features], in_features, rng),
            ),
            c,
            p,
            n: in_features,
            m: units,
        }
    }

    /// Polynomial degree.
    pub fn degree(&self) -> i32 {
        self.p
    }
}

impl Module for KervolutionLinear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let w = g.param(&self.w);
        let z = g.matmul_transb(x, w);
        let z = g.add_scalar(z, self.c);
        g.powi(z, self.p)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("w", &self.w);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        Costs {
            macs: input[0] as u64
                * self.m as u64
                * NeuronFamily::Kervolution.complexity(self.n as u64, 1).macs,
            output: vec![input[0], self.m],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::{gradcheck, Graph};
    use qn_tensor::Tensor;

    #[test]
    fn forward_is_powered_linear() {
        let mut rng = Rng::seed_from(1);
        let layer = KervolutionLinear::new(4, 2, 0.5, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        for bi in 0..2 {
            for j in 0..2 {
                let z: f32 = (0..4)
                    .map(|i| layer.w.value().get(&[j, i]) * x.get(&[bi, i]))
                    .sum::<f32>()
                    + 0.5;
                assert!((g.value(y).get(&[bi, j]) - z.powi(3)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn same_params_as_linear() {
        let mut rng = Rng::seed_from(2);
        let layer = KervolutionLinear::new(10, 4, 1.0, 7, &mut rng);
        assert_eq!(layer.param_count(), 40);
        assert_eq!(layer.degree(), 7);
    }

    #[test]
    fn gradcheck_small_degree() {
        let mut rng = Rng::seed_from(3);
        let layer = KervolutionLinear::new(3, 2, 1.0, 2, &mut rng);
        let x = Tensor::randn(&[2, 3], &mut rng).scale(0.5);
        assert!(gradcheck(
            |g, v| {
                let y = layer.forward(g, v);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            5e-2
        ));
    }

    #[test]
    fn high_degree_amplifies_magnitude() {
        // the mechanism behind Fig. 6's instability: |y| grows as |z|^p
        let mut rng = Rng::seed_from(4);
        let low = KervolutionLinear::new(8, 4, 1.0, 3, &mut rng);
        let mut rng2 = Rng::seed_from(4);
        let high = KervolutionLinear::new(8, 4, 1.0, 15, &mut rng2);
        let x = Tensor::randn(&[8, 8], &mut rng).scale(2.0);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let yl = low.forward(&mut g, xv);
        let yh = high.forward(&mut g, xv);
        assert!(g.value(yh).map(|v| v.abs()).max() > g.value(yl).map(|v| v.abs()).max());
    }
}
