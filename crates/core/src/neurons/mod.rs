//! Neuron-layer implementations: the proposed efficient quadratic neuron and
//! every comparator family from the paper's Table I.
//!
//! All dense layers implement [`qn_nn::Module`] mapping `[B, n] -> [B, out]`;
//! convolutional forms are obtained with [`PatchConv2d`], which lowers the
//! input with im2col so that each spatial patch becomes the neuron input
//! `x` — the deployment scheme of the paper's Fig. 3.

mod efficient;
mod general;
mod kervolution;
mod patch_conv;
mod quant;
mod rank_forms;

pub use efficient::EfficientQuadraticLinear;
pub use general::{GeneralQuadraticLinear, NoLinearQuadraticLinear};
pub use kervolution::KervolutionLinear;
pub use patch_conv::{EfficientQuadraticConv2d, PatchConv2d};
pub use quant::{QuantizedPatchConv, QuantizedQuadratic};
pub use rank_forms::{FactorizedQuadraticLinear, LowRankQuadraticLinear, Quad1Linear, Quad2Linear};
