use crate::complexity::NeuronFamily;
use qn_autograd::{Exec, Parameter, Var};
use qn_nn::{kaiming_normal, Costs, Module, ParamVisitor};
use qn_tensor::{Rng, Tensor};

/// The general quadratic neuron `y = xᵀMx + wᵀx` of Zoumpourlis et al.
/// (ICCV 2017) \[17\], as a dense layer of `m` units, each with its own full
/// `n × n` matrix.
///
/// Parameter cost is O(n² + n) per neuron — the paper's motivation for the
/// spectral low-rank factorization. Use only at small `n` (first layers,
/// unit tests, compression sources).
#[derive(Debug)]
pub struct GeneralQuadraticLinear {
    mats: Parameter,
    w: Parameter,
    n: usize,
    m: usize,
    with_linear: bool,
}

impl GeneralQuadraticLinear {
    /// Creates a layer of `units` general quadratic neurons. `M` entries are
    /// initialized `N(0, 1/n)` and `w` Kaiming-normal.
    pub fn new(in_features: usize, units: usize, rng: &mut Rng) -> Self {
        Self::with_options(in_features, units, true, rng)
    }

    pub(crate) fn with_options(n: usize, m: usize, with_linear: bool, rng: &mut Rng) -> Self {
        assert!(m > 0, "layer needs at least one neuron");
        let scale = 1.0 / n as f32;
        let mats = Parameter::named(
            "general.m",
            Tensor::from_fn(&[m, n, n], |_| rng.normal() * scale),
        );
        let w = Parameter::named("general.w", kaiming_normal(&[m, n], n, rng));
        GeneralQuadraticLinear {
            mats,
            w,
            n,
            m,
            with_linear,
        }
    }

    /// Number of inputs `n`.
    pub fn in_features(&self) -> usize {
        self.n
    }

    /// Number of neurons (= outputs).
    pub fn neurons(&self) -> usize {
        self.m
    }

    /// Snapshot of neuron `j`'s quadratic matrix.
    ///
    /// # Panics
    ///
    /// Panics if `j >= neurons()`.
    pub fn matrix(&self, j: usize) -> Tensor {
        assert!(j < self.m, "neuron index {j} out of range");
        self.mats
            .value()
            .slice_axis(0, j, j + 1)
            .reshape(&[self.n, self.n])
            .expect("slice is one matrix")
    }

    /// Snapshot of the linear weights `[m, n]`.
    pub fn linear_weights(&self) -> Tensor {
        self.w.value()
    }
}

impl Module for GeneralQuadraticLinear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let batch = g.value(x).shape().dim(0);
        let mats = g.param(&self.mats);
        let mut units = Vec::with_capacity(self.m);
        for j in 0..self.m {
            let mj = g.slice_axis(mats, 0, j, j + 1);
            let mj = g.reshape(mj, &[self.n, self.n]);
            let t = g.matmul(x, mj); // [B, n]
            let prod = g.mul(t, x);
            let y2 = g.sum_axis(prod, 1); // [B]
            units.push(g.reshape(y2, &[batch, 1]));
        }
        let quad = g.concat(&units, 1); // [B, m]
        if self.with_linear {
            let w = g.param(&self.w);
            let lin = g.matmul_transb(x, w);
            g.add(quad, lin)
        } else {
            quad
        }
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("m", &self.mats);
        if self.with_linear {
            v.param("w", &self.w);
        }
    }

    fn costs(&self, input: &[usize]) -> Costs {
        let batch = input[0] as u64;
        let family = if self.with_linear {
            NeuronFamily::General
        } else {
            NeuronFamily::NoLinear
        };
        Costs {
            macs: batch * self.m as u64 * family.complexity(self.n as u64, 1).macs,
            output: vec![input[0], self.m],
        }
    }
}

/// The linear-term-free variant `y = xᵀMx` of Mantini & Shah (CQNN,
/// ICPR 2020) \[16\].
#[derive(Debug)]
pub struct NoLinearQuadraticLinear {
    inner: GeneralQuadraticLinear,
}

impl NoLinearQuadraticLinear {
    /// Creates a layer of `units` quadratic-only neurons.
    pub fn new(in_features: usize, units: usize, rng: &mut Rng) -> Self {
        NoLinearQuadraticLinear {
            inner: GeneralQuadraticLinear::with_options(in_features, units, false, rng),
        }
    }

    /// Number of inputs `n`.
    pub fn in_features(&self) -> usize {
        self.inner.in_features()
    }
}

impl Module for NoLinearQuadraticLinear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        self.inner.forward(g, x)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        self.inner.visit_params(v);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        self.inner.costs(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::{gradcheck, Graph};
    use qn_linalg::quadratic_form;

    #[test]
    fn forward_matches_quadratic_form() {
        let mut rng = Rng::seed_from(1);
        let layer = GeneralQuadraticLinear::new(5, 3, &mut rng);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        for bi in 0..2 {
            let xb = x.slice_axis(0, bi, bi + 1).reshape(&[5]).unwrap();
            for j in 0..3 {
                let quad = quadratic_form(&xb, &layer.matrix(j));
                let w = layer.linear_weights();
                let lin: f32 = (0..5).map(|i| w.get(&[j, i]) * xb.get(&[i])).sum();
                let expected = quad + lin;
                assert!(
                    (g.value(y).get(&[bi, j]) - expected).abs() < 1e-3,
                    "unit {j} batch {bi}"
                );
            }
        }
    }

    #[test]
    fn no_linear_variant_omits_linear_term() {
        let mut rng = Rng::seed_from(2);
        let layer = NoLinearQuadraticLinear::new(4, 2, &mut rng);
        assert_eq!(layer.params().len(), 1);
        let x = Tensor::randn(&[1, 4], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        let xb = x.reshape(&[4]).unwrap();
        let expected = quadratic_form(&xb, &layer.inner.matrix(0));
        assert!((g.value(y).get(&[0, 0]) - expected).abs() < 1e-4);
    }

    #[test]
    fn gradcheck_input() {
        let mut rng = Rng::seed_from(3);
        let layer = GeneralQuadraticLinear::new(4, 2, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let y = layer.forward(g, v);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            3e-2
        ));
    }

    #[test]
    fn costs_are_quadratic_in_n() {
        let mut rng = Rng::seed_from(4);
        let layer = GeneralQuadraticLinear::new(16, 2, &mut rng);
        let c = layer.costs(&[1, 16]);
        assert_eq!(c.macs, 2 * (16 * 16 + 32));
        assert_eq!(layer.param_count(), 2 * (16 * 16 + 16));
    }
}
