//! Int8 twins of the quadratic-neuron layers.
//!
//! [`QuantizedQuadratic`] is the inference-only form of
//! [`EfficientQuadraticLinear`](super::EfficientQuadraticLinear): the two
//! big products `f = x(Qᵏ)ᵀ` and `xWᵀ` run through
//! [`qn_tensor::gemm_i8`] against per-output-channel int8 weights, sharing
//! **one** activation quantization of `x` — the quadratic neuron's extra
//! product costs no extra quantization pass. The cheap per-neuron tail
//! (`Σᵢ λᵢ fᵢ² + b`, and the vectorized interleave of §III-B) stays in
//! f32: `Λᵏ` is trained at tiny learning rates and its dynamic range is
//! what the paper's stability lemma bounds, so it is the one place 8-bit
//! rounding would bite.
//!
//! [`QuantizedPatchConv`] redeploys any quantized dense layer as a
//! convolution by im2col lowering, exactly like
//! [`PatchConv2d`](super::PatchConv2d) does for the f32 original.
//!
//! Like the `qn-nn` quantized layers, forwards compute off-tape and
//! re-enter the graph as leaves: no gradients flow.

use qn_autograd::{Exec, Var};
use qn_nn::quant::{quantize_acts, ACT_STATS_NAME};
use qn_nn::{Costs, Module, ParamVisitor};
use qn_tensor::{gemm_i8, Conv2dSpec, MatMut, MatRefI8, QTensor, Tensor, GEMM_I8_MAX_K};
use std::sync::RwLock;

use crate::complexity::NeuronFamily;

/// Inference-only int8 form of the paper's efficient quadratic neuron
/// layer. Build via [`Module::quantized`] on
/// [`EfficientQuadraticLinear`](super::EfficientQuadraticLinear) or
/// directly with [`QuantizedQuadratic::from_factors`].
pub struct QuantizedQuadratic {
    /// `[m·k, n]` int8: stacked `(Qᵏ)ᵀ` rows, per-row scales.
    q: QTensor,
    /// `[m, n]` int8 linear weights, per-row scales.
    w: QTensor,
    /// `[m, k]` f32 eigenvalues (kept full precision, see module docs).
    lambda: Tensor,
    /// `[m]` f32 bias.
    b: Tensor,
    n: usize,
    m: usize,
    k: usize,
    vectorized: bool,
    act_stats: RwLock<Tensor>,
}

impl QuantizedQuadratic {
    /// Quantizes explicit factors: `q` is `[m·k, n]`, `lambda` `[m, k]`,
    /// `w` `[m, n]`, `b` `[m]` — the same layout as
    /// `EfficientQuadraticLinear::from_factors`.
    ///
    /// # Panics
    ///
    /// Panics on shape inconsistency, non-finite weights, or
    /// `n > GEMM_I8_MAX_K`.
    pub fn from_factors(
        q: &Tensor,
        lambda: &Tensor,
        w: &Tensor,
        b: &Tensor,
        vectorized: bool,
    ) -> QuantizedQuadratic {
        let (mk, n) = q.dims2();
        let (m, k) = lambda.dims2();
        assert_eq!(mk, m * k, "q rows {mk} != m*k = {}", m * k);
        assert_eq!(w.dims2(), (m, n), "w shape mismatch");
        assert_eq!(b.numel(), m, "b length mismatch");
        assert!(n <= GEMM_I8_MAX_K, "input width {n} exceeds GEMM_I8_MAX_K");
        QuantizedQuadratic {
            q: QTensor::quantize(q),
            w: QTensor::quantize(w),
            lambda: lambda.clone(),
            b: b.clone(),
            n,
            m,
            k,
            vectorized,
            act_stats: RwLock::new(Tensor::zeros(&[2])),
        }
    }

    /// Number of inputs `n`.
    pub fn in_features(&self) -> usize {
        self.n
    }

    /// Output width: `m·(k+1)` vectorized, `m` scalar-output.
    pub fn out_features(&self) -> usize {
        if self.vectorized {
            self.m * (self.k + 1)
        } else {
            self.m
        }
    }

    /// Total int8 + scale bytes of both weight matrices (the f32 original
    /// stores `(m·k + m)·n` floats).
    pub fn weight_bytes(&self) -> usize {
        self.q.weight_bytes() + self.w.weight_bytes()
    }

    /// `[lead, n] -> [lead, out]` forward on raw data, off-tape.
    fn apply(&self, xd: &[f32], lead: usize) -> Vec<f32> {
        let (m, k, n) = (self.m, self.k, self.n);
        let (codes, sa) = quantize_acts(&self.act_stats, xd, lead, n);
        let a = MatRefI8::new(&codes, lead, n);
        // one quantization of x feeds both products
        let mut f = vec![0.0f32; lead * m * k];
        gemm_i8(
            MatMut::new(&mut f, lead, m * k),
            a,
            self.q.mat().transpose(),
            &sa,
            self.q.scales(),
        );
        let mut y1 = vec![0.0f32; lead * m];
        gemm_i8(
            MatMut::new(&mut y1, lead, m),
            a,
            self.w.mat().transpose(),
            &sa,
            self.w.scales(),
        );
        let width = self.out_features();
        let (lam, bias) = (self.lambda.data(), self.b.data());
        let mut out = vec![0.0f32; lead * width];
        for bi in 0..lead {
            let frow = &f[bi * m * k..(bi + 1) * m * k];
            let orow = &mut out[bi * width..(bi + 1) * width];
            for j in 0..m {
                let fj = &frow[j * k..(j + 1) * k];
                let mut y = y1[bi * m + j] + bias[j];
                for i in 0..k {
                    y += lam[j * k + i] * fj[i] * fj[i];
                }
                if self.vectorized {
                    orow[j * (k + 1)] = y;
                    orow[j * (k + 1) + 1..(j + 1) * (k + 1)].copy_from_slice(fj);
                } else {
                    orow[j] = y;
                }
            }
        }
        out
    }
}

impl Module for QuantizedQuadratic {
    fn forward(&self, cx: &mut dyn Exec, x: Var) -> Var {
        let dims = cx.value(x).shape().dims().to_vec();
        let nd = dims.len();
        assert!(
            nd >= 1 && dims[nd - 1] == self.n,
            "QuantizedQuadratic: input trailing dim {:?} != {}",
            dims,
            self.n
        );
        let lead: usize = dims[..nd - 1].iter().product();
        let mut out_dims = dims;
        out_dims[nd - 1] = self.out_features();
        let y = {
            let xt = cx.value(x);
            let data = self.apply(xt.data(), lead);
            Tensor::from_vec(data, &out_dims).expect("quantized output shape is consistent")
        };
        cx.leaf(y)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.state(ACT_STATS_NAME, &self.act_stats);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        assert_eq!(input.len(), 2, "dense layer expects [B, n]");
        let batch = input[0] as u64;
        let per_neuron = NeuronFamily::EfficientQuadratic
            .complexity(self.n as u64, self.k as u64)
            .macs;
        Costs {
            macs: batch * self.m as u64 * per_neuron,
            output: vec![input[0], self.out_features()],
        }
    }

    fn weight_dtype(&self) -> &'static str {
        "int8"
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(QuantizedQuadratic {
            q: self.q.clone(),
            w: self.w.clone(),
            lambda: self.lambda.clone(),
            b: self.b.clone(),
            n: self.n,
            m: self.m,
            k: self.k,
            vectorized: self.vectorized,
            act_stats: RwLock::new(
                self.act_stats
                    .read()
                    .expect("act_stats lock poisoned")
                    .clone(),
            ),
        }))
    }
}

/// Convolutional deployment of a quantized dense layer: the int8 sibling
/// of [`PatchConv2d`](super::PatchConv2d), produced by its
/// [`Module::quantized`] implementation.
pub struct QuantizedPatchConv {
    inner: Box<dyn Module>,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl QuantizedPatchConv {
    /// Wraps a quantized dense layer whose input width equals
    /// `spec.patch_len(in_channels)`.
    pub fn new(inner: Box<dyn Module>, in_channels: usize, spec: Conv2dSpec) -> QuantizedPatchConv {
        let n = spec.patch_len(in_channels);
        let probe = inner.costs(&[1, n]);
        let out_channels = probe.output[1];
        QuantizedPatchConv {
            inner,
            spec,
            in_channels,
            out_channels,
        }
    }

    /// Produced channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Module for QuantizedPatchConv {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let (b, c, h, w) = g.value(x).dims4();
        assert_eq!(
            c, self.in_channels,
            "expected {} channels, got {c}",
            self.in_channels
        );
        let (oh, ow) = self.spec.output_hw(h, w);
        let cols = g.im2col(x, self.spec);
        let y = self.inner.forward(g, cols);
        g.rows_to_nchw(y, b, oh, ow, self.out_channels)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        self.inner.visit_params(v);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        assert_eq!(input.len(), 4, "QuantizedPatchConv expects a 4-D input");
        let (b, _c, h, w) = (input[0], input[1], input[2], input[3]);
        let (oh, ow) = self.spec.output_hw(h, w);
        let rows = b * oh * ow;
        let n = self.spec.patch_len(self.in_channels);
        let inner = self.inner.costs(&[rows, n]);
        Costs {
            macs: inner.macs,
            output: vec![b, self.out_channels, oh, ow],
        }
    }

    fn weight_dtype(&self) -> &'static str {
        self.inner.weight_dtype()
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(QuantizedPatchConv {
            inner: self.inner.quantized()?,
            spec: self.spec,
            in_channels: self.in_channels,
            out_channels: self.out_channels,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{EfficientQuadraticConv2d, EfficientQuadraticLinear};
    use super::*;
    use qn_autograd::EagerExec;
    use qn_tensor::Rng;

    fn drift(a: &Tensor, b: &Tensor) -> f32 {
        let mut worst = 0.0f32;
        for (x, y) in a.data().iter().zip(b.data()) {
            worst = worst.max((x - y).abs());
        }
        worst
    }

    fn eager_forward(m: &dyn Module, x: Tensor) -> Tensor {
        let mut ex = EagerExec::new();
        let v = ex.leaf(x);
        let y = m.forward(&mut ex, v);
        ex.value(y).clone()
    }

    #[test]
    fn quantized_quadratic_tracks_f32() {
        let mut rng = Rng::seed_from(1);
        let layer = EfficientQuadraticLinear::new(12, 3, 2, &mut rng);
        let q = layer.quantized().expect("quadratic layer quantizes");
        assert_eq!(q.weight_dtype(), "int8");
        let x = Tensor::randn(&[5, 12], &mut rng);
        let yf = eager_forward(&layer, x.clone());
        let yq = eager_forward(q.as_ref(), x);
        assert_eq!(yf.shape().dims(), yq.shape().dims());
        let d = drift(&yf, &yq);
        assert!(d < 0.25, "quantized quadratic drift too large: {d}");
    }

    #[test]
    fn scalar_output_form_also_quantizes() {
        let mut rng = Rng::seed_from(2);
        let layer = EfficientQuadraticLinear::new_scalar_output(8, 4, 3, &mut rng);
        let q = layer.quantized().expect("scalar-output form quantizes");
        let x = Tensor::randn(&[3, 8], &mut rng);
        let yq = eager_forward(q.as_ref(), x);
        assert_eq!(yq.shape().dims(), &[3, 4]);
    }

    #[test]
    fn quantized_patch_conv_matches_f32_geometry() {
        let mut rng = Rng::seed_from(3);
        let spec = Conv2dSpec::new(3, 1, 1);
        let conv = EfficientQuadraticConv2d::efficient(3, 4, 3, spec, &mut rng);
        let q = conv.quantized().expect("patch conv quantizes");
        assert_eq!(q.weight_dtype(), "int8");
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let yf = eager_forward(&conv, x.clone());
        let yq = eager_forward(q.as_ref(), x);
        assert_eq!(yf.shape().dims(), yq.shape().dims());
        let d = drift(&yf, &yq);
        assert!(d < 0.5, "quantized conv drift too large: {d}");
    }

    #[test]
    fn costs_and_widths_match_original() {
        let mut rng = Rng::seed_from(4);
        let layer = EfficientQuadraticLinear::new(10, 2, 3, &mut rng);
        let q = layer.quantized().unwrap();
        assert_eq!(layer.costs(&[7, 10]).macs, q.costs(&[7, 10]).macs);
        assert_eq!(layer.costs(&[7, 10]).output, q.costs(&[7, 10]).output);
    }

    #[test]
    fn weight_bytes_beat_f32() {
        let mut rng = Rng::seed_from(5);
        let layer = EfficientQuadraticLinear::new(64, 8, 4, &mut rng);
        let q = QuantizedQuadratic::from_factors(
            &layer.params()[0].value(),
            &layer.params()[1].value(),
            &layer.params()[2].value(),
            &layer.params()[3].value(),
            true,
        );
        let f32_bytes = (8 * 4 * 64 + 8 * 64) * 4;
        assert!(
            (f32_bytes as f64) / (q.weight_bytes() as f64) > 3.5,
            "compression below target: {} vs {}",
            f32_bytes,
            q.weight_bytes()
        );
    }
}
