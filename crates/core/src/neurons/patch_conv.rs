use super::EfficientQuadraticLinear;
use qn_autograd::{Exec, Var};
use qn_nn::{Costs, Module, ParamVisitor};
use qn_tensor::{Conv2dSpec, Rng};

/// Deploys any dense neuron layer as a 2-D convolution by im2col lowering —
/// the paper's Fig. 3 deployment: each receptive-field patch becomes the
/// neuron input `x`, and each neuron's outputs become output channels.
///
/// For the proposed neuron the `k + 1` outputs of each filter land on the
/// channel dimension, so a layer with `m` filters produces `m·(k+1)`
/// channels.
///
/// # Example
///
/// ```
/// use qn_core::neurons::{EfficientQuadraticLinear, PatchConv2d};
/// use qn_nn::Module;
/// use qn_tensor::{Conv2dSpec, Rng};
///
/// let mut rng = Rng::seed_from(0);
/// let spec = Conv2dSpec::new(3, 1, 1);
/// let n = spec.patch_len(3); // 27 inputs per patch
/// let dense = EfficientQuadraticLinear::new(n, 4, 3, &mut rng);
/// let conv = PatchConv2d::new(dense, 3, spec);
/// assert_eq!(conv.out_channels(), 16); // 4 neurons × (3 + 1)
/// ```
pub struct PatchConv2d<L: Module> {
    inner: L,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl<L: Module> PatchConv2d<L> {
    /// Wraps a dense layer whose input width equals
    /// `spec.patch_len(in_channels)`.
    ///
    /// # Panics
    ///
    /// Panics if the dense layer's input width does not match the patch
    /// length.
    pub fn new(inner: L, in_channels: usize, spec: Conv2dSpec) -> Self {
        let n = spec.patch_len(in_channels);
        let probe = inner.costs(&[1, n]);
        let out_channels = probe.output[1];
        PatchConv2d {
            inner,
            spec,
            in_channels,
            out_channels,
        }
    }

    /// The wrapped dense layer.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Produced channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }
}

impl<L: Module> Module for PatchConv2d<L> {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let (b, c, h, w) = g.value(x).dims4();
        assert_eq!(
            c, self.in_channels,
            "expected {} channels, got {c}",
            self.in_channels
        );
        let (oh, ow) = self.spec.output_hw(h, w);
        let cols = g.im2col(x, self.spec); // [B*OH*OW, n]
        let y = self.inner.forward(g, cols); // [B*OH*OW, out]
        g.rows_to_nchw(y, b, oh, ow, self.out_channels)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        self.inner.visit_params(v);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        assert_eq!(input.len(), 4, "PatchConv2d expects a 4-D input shape");
        let (b, _c, h, w) = (input[0], input[1], input[2], input[3]);
        let (oh, ow) = self.spec.output_hw(h, w);
        let rows = b * oh * ow;
        let n = self.spec.patch_len(self.in_channels);
        let inner = self.inner.costs(&[rows, n]);
        Costs {
            macs: inner.macs,
            output: vec![b, self.out_channels, oh, ow],
        }
    }

    fn weight_dtype(&self) -> &'static str {
        self.inner.weight_dtype()
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(super::QuantizedPatchConv::new(
            self.inner.quantized()?,
            self.in_channels,
            self.spec,
        )))
    }
}

/// The proposed quadratic neuron in convolutional form.
pub type EfficientQuadraticConv2d = PatchConv2d<EfficientQuadraticLinear>;

impl EfficientQuadraticConv2d {
    /// Creates a quadratic convolution with `filters` neurons of rank `k`,
    /// producing `filters·(k+1)` channels.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k` exceeds the patch length.
    pub fn efficient(
        in_channels: usize,
        filters: usize,
        k: usize,
        spec: Conv2dSpec,
        rng: &mut Rng,
    ) -> Self {
        let n = spec.patch_len(in_channels);
        PatchConv2d::new(
            EfficientQuadraticLinear::new(n, filters, k, rng),
            in_channels,
            spec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::{gradcheck, Graph};
    use qn_tensor::Tensor;

    #[test]
    fn conv_shapes_and_channel_count() {
        let mut rng = Rng::seed_from(1);
        let spec = Conv2dSpec::new(3, 1, 1);
        let conv = EfficientQuadraticConv2d::efficient(3, 4, 3, spec, &mut rng);
        assert_eq!(conv.out_channels(), 16);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[2, 3, 6, 6], &mut rng));
        let y = conv.forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[2, 16, 6, 6]);
    }

    #[test]
    fn conv_equals_dense_on_each_patch() {
        let mut rng = Rng::seed_from(2);
        let spec = Conv2dSpec::new(3, 1, 0); // no padding: patches are plain crops
        let conv = EfficientQuadraticConv2d::efficient(2, 2, 2, spec, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = conv.forward(&mut g, xv);
        // patch at output (0, 0) is the top-left 3x3 crop, channel-major
        let patch = {
            let mut v = Vec::new();
            for ci in 0..2 {
                for yy in 0..3 {
                    for xx in 0..3 {
                        v.push(x.get(&[0, ci, yy, xx]));
                    }
                }
            }
            Tensor::from_vec(v, &[1, 18]).unwrap()
        };
        let mut g2 = Graph::new();
        let pv = g2.leaf(patch);
        let dense_out = conv.inner().forward(&mut g2, pv);
        for ch in 0..6 {
            assert!(
                (g.value(y).get(&[0, ch, 0, 0]) - g2.value(dense_out).get(&[0, ch])).abs() < 1e-4,
                "channel {ch}"
            );
        }
    }

    #[test]
    fn strided_conv_geometry() {
        let mut rng = Rng::seed_from(3);
        let spec = Conv2dSpec::new(3, 2, 1);
        let conv = EfficientQuadraticConv2d::efficient(4, 3, 1, spec, &mut rng);
        let c = conv.costs(&[1, 4, 8, 8]);
        assert_eq!(c.output, vec![1, 6, 4, 4]);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[1, 4, 8, 8], &mut rng));
        let y = conv.forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[1, 6, 4, 4]);
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = Rng::seed_from(4);
        let spec = Conv2dSpec::new(3, 1, 1);
        let conv = EfficientQuadraticConv2d::efficient(1, 1, 2, spec, &mut rng);
        let x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let y = conv.forward(g, v);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            3e-2
        ));
    }

    #[test]
    fn costs_scale_with_spatial_positions() {
        let mut rng = Rng::seed_from(5);
        let spec = Conv2dSpec::new(3, 1, 1);
        let conv = EfficientQuadraticConv2d::efficient(2, 2, 3, spec, &mut rng);
        let small = conv.costs(&[1, 2, 4, 4]).macs;
        let big = conv.costs(&[1, 2, 8, 8]).macs;
        assert_eq!(big, small * 4);
    }
}
