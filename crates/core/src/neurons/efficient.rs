use crate::complexity::NeuronFamily;
use crate::LAMBDA_PARAM_NAME;
use qn_autograd::{Exec, Parameter, Var};
use qn_linalg::random_orthonormal;
use qn_nn::{kaiming_normal, Costs, Module, ParamVisitor};
use qn_tensor::{Rng, Tensor};

/// The paper's efficient quadratic neuron, as a dense layer of `m` neurons
/// over `n` inputs with decomposition rank `k`.
///
/// Each neuron computes `y = xᵀQᵏΛᵏ(Qᵏ)ᵀx + wᵀx + b` and, with vectorized
/// output enabled (the default, §III-B of the paper), additionally emits the
/// intermediate features `fᵏ = (Qᵏ)ᵀx`, for `k + 1` output channels per
/// neuron. Output layout is neuron-major: `[y₀, f₀…, y₁, f₁…, …]`.
///
/// Per-neuron cost matches the paper's Eqs. (9)–(10): `(k+1)n + k`
/// parameters and `(k+1)n + 2k` MACs.
///
/// # Example
///
/// ```
/// use qn_autograd::Graph;
/// use qn_core::neurons::EfficientQuadraticLinear;
/// use qn_nn::Module;
/// use qn_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::seed_from(1);
/// let layer = EfficientQuadraticLinear::new(16, 4, 3, &mut rng);
/// assert_eq!(layer.out_features(), 16); // 4 neurons × (3 + 1)
/// let mut g = Graph::new();
/// let x = g.leaf(Tensor::randn(&[2, 16], &mut rng));
/// let y = layer.forward(&mut g, x);
/// assert_eq!(g.value(y).shape().dims(), &[2, 16]);
/// ```
#[derive(Debug)]
pub struct EfficientQuadraticLinear {
    /// `[m·k, n]`: row `j·k + i` is the i-th column of neuron j's `Qᵏ`.
    q: Parameter,
    /// `[m, k]` eigenvalue diagonal per neuron.
    lambda: Parameter,
    /// `[m, n]` linear weights.
    w: Parameter,
    /// `[m]` bias.
    b: Parameter,
    n: usize,
    m: usize,
    k: usize,
    vectorized: bool,
}

impl EfficientQuadraticLinear {
    /// Creates a layer of `neurons` quadratic neurons with vectorized
    /// output. `Qᵏ` columns are initialized orthonormal per neuron, `Λᵏ`
    /// small uniform, `w` Kaiming-normal.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > in_features`.
    pub fn new(in_features: usize, neurons: usize, k: usize, rng: &mut Rng) -> Self {
        Self::with_options(in_features, neurons, k, true, rng)
    }

    /// Creates a layer whose neurons emit only the scalar `y` (no `fᵏ`
    /// reuse) — the ablation of the paper's §III-B contribution.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > in_features`.
    pub fn new_scalar_output(in_features: usize, neurons: usize, k: usize, rng: &mut Rng) -> Self {
        Self::with_options(in_features, neurons, k, false, rng)
    }

    fn with_options(n: usize, m: usize, k: usize, vectorized: bool, rng: &mut Rng) -> Self {
        assert!(m > 0, "layer needs at least one neuron");
        assert!(k >= 1 && k <= n, "rank k={k} must be in 1..={n}");
        let mut q_rows = Vec::with_capacity(m * k * n);
        for _ in 0..m {
            // orthonormal columns, stored as rows of the stacked matrix
            let qn = random_orthonormal(n, k, rng); // [n, k]
            let qt = qn.transpose2(); // [k, n]
            q_rows.extend_from_slice(qt.data());
        }
        let q = Parameter::named(
            "quad.q",
            Tensor::from_vec(q_rows, &[m * k, n]).expect("sizes consistent"),
        );
        let lambda = Parameter::named(
            LAMBDA_PARAM_NAME,
            Tensor::rand_uniform(&[m, k], -0.05, 0.05, rng),
        );
        let w = Parameter::named("quad.w", kaiming_normal(&[m, n], n, rng));
        let b = Parameter::named("quad.b", Tensor::zeros(&[m]));
        EfficientQuadraticLinear {
            q,
            lambda,
            w,
            b,
            n,
            m,
            k,
            vectorized,
        }
    }

    /// Builds the layer from explicit factors: `q` is `[m·k, n]`, `lambda`
    /// `[m, k]`, `w` `[m, n]`, `b` `[m]` — used by the compression pipeline.
    ///
    /// # Panics
    ///
    /// Panics on any shape inconsistency.
    pub fn from_factors(q: Tensor, lambda: Tensor, w: Tensor, b: Tensor, vectorized: bool) -> Self {
        let (mk, n) = q.dims2();
        let (m, k) = lambda.dims2();
        assert_eq!(mk, m * k, "q rows {mk} != m*k = {}", m * k);
        assert_eq!(w.dims2(), (m, n), "w shape mismatch");
        assert_eq!(b.numel(), m, "b length mismatch");
        EfficientQuadraticLinear {
            q: Parameter::named("quad.q", q),
            lambda: Parameter::named(LAMBDA_PARAM_NAME, lambda),
            w: Parameter::named("quad.w", w),
            b: Parameter::named("quad.b", b),
            n,
            m,
            k,
            vectorized,
        }
    }

    /// Number of inputs `n`.
    pub fn in_features(&self) -> usize {
        self.n
    }

    /// Output width: `m·(k+1)` vectorized, `m` scalar-output.
    pub fn out_features(&self) -> usize {
        if self.vectorized {
            self.m * (self.k + 1)
        } else {
            self.m
        }
    }

    /// Number of neurons `m`.
    pub fn neurons(&self) -> usize {
        self.m
    }

    /// Decomposition rank `k`.
    pub fn rank(&self) -> usize {
        self.k
    }

    /// Whether the `fᵏ` features are emitted.
    pub fn is_vectorized(&self) -> bool {
        self.vectorized
    }

    /// The eigenvalue parameters `Λᵏ` (for the dedicated optimizer group).
    pub fn lambda_param(&self) -> &Parameter {
        &self.lambda
    }

    /// Snapshot of neuron `j`'s reconstructed quadratic matrix
    /// `QᵏΛᵏ(Qᵏ)ᵀ` — used by analysis experiments.
    ///
    /// # Panics
    ///
    /// Panics if `j >= neurons()`.
    pub fn quadratic_matrix(&self, j: usize) -> Tensor {
        assert!(j < self.m, "neuron index {j} out of range");
        let q = self.q.value(); // [m*k, n]
        let lam = self.lambda.value();
        let qj = q.slice_axis(0, j * self.k, (j + 1) * self.k); // [k, n]
                                                                // Σ_i λ_i q_i q_iᵀ
        let mut out = Tensor::zeros(&[self.n, self.n]);
        for i in 0..self.k {
            let qi = qj.slice_axis(0, i, i + 1); // [1, n]
            let outer = qi.matmul_transa(&qi); // qᵢᵀqᵢ: [n, 1] @ [1, n] = [n, n]
            let outer = outer.scale(lam.get(&[j, i]));
            out.add_assign(&outer);
        }
        out
    }

    /// Splits the forward computation so subclasses of behaviour (scalar vs
    /// vectorized) share the quadratic evaluation. Returns `(y, f)` with
    /// `f` kept flat as `[B, m·k]`.
    fn forward_parts(&self, g: &mut dyn Exec, x: Var) -> (Var, Var) {
        let q = g.param(&self.q);
        let f = g.matmul_transb(x, q); // [B, m*k]
        let lam = g.param(&self.lambda);
        let y2 = g.weighted_square_sum(f, lam, self.m, self.k); // [B, m]
        let w = g.param(&self.w);
        let xw = g.matmul_transb(x, w);
        let b = g.param(&self.b);
        let y1 = g.add_bcast(xw, b);
        let y = g.add(y1, y2);
        (y, f)
    }
}

impl Module for EfficientQuadraticLinear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        // accept [B, n] or [B, T, n]: flatten leading dims like Linear
        // does. Dims live on the stack so the serving path allocates
        // nothing.
        let mut dims = [0usize; 8];
        let nd = {
            let d = g.value(x).shape().dims();
            assert!(
                !d.is_empty(),
                "EfficientQuadraticLinear expects an input of rank >= 1"
            );
            assert!(
                d.len() <= dims.len(),
                "EfficientQuadraticLinear supports rank <= 8"
            );
            dims[..d.len()].copy_from_slice(d);
            d.len()
        };
        assert_eq!(
            dims[nd - 1],
            self.n,
            "expected {} inputs, got shape {:?}",
            self.n,
            &dims[..nd]
        );
        let lead: usize = dims[..nd - 1].iter().product();
        let x = g.reshape(x, &[lead, self.n]);
        let (y, f) = self.forward_parts(g, x);
        dims[nd - 1] = self.out_features();
        if !self.vectorized {
            return g.reshape(y, &dims[..nd]);
        }
        let out = g.interleave_last(y, f, self.k); // [lead, m*(k+1)]
        g.reshape(out, &dims[..nd])
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("q", &self.q);
        v.param("lambda", &self.lambda);
        v.param("w", &self.w);
        v.param("b", &self.b);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        assert_eq!(input.len(), 2, "dense layer expects [B, n]");
        let batch = input[0] as u64;
        let per_neuron = NeuronFamily::EfficientQuadratic
            .complexity(self.n as u64, self.k as u64)
            .macs;
        Costs {
            macs: batch * self.m as u64 * per_neuron,
            output: vec![input[0], self.out_features()],
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(super::QuantizedQuadratic::from_factors(
            &self.q.value(),
            &self.lambda.value(),
            &self.w.value(),
            &self.b.value(),
            self.vectorized,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::{gradcheck, Graph};

    /// Naive per-sample reference implementing the paper's equations
    /// directly.
    fn reference(layer: &EfficientQuadraticLinear, x: &Tensor) -> Tensor {
        let (batch, n) = x.dims2();
        let (m, k) = (layer.neurons(), layer.rank());
        let q = layer.q.value();
        let lam = layer.lambda.value();
        let w = layer.w.value();
        let b = layer.b.value();
        let width = layer.out_features();
        let mut out = Tensor::zeros(&[batch, width]);
        for bi in 0..batch {
            for j in 0..m {
                let mut y = b.get(&[j]);
                for i in 0..n {
                    y += w.get(&[j, i]) * x.get(&[bi, i]);
                }
                let mut f = vec![0.0f32; k];
                for (i, fi) in f.iter_mut().enumerate() {
                    for p in 0..n {
                        *fi += q.get(&[j * k + i, p]) * x.get(&[bi, p]);
                    }
                }
                for (i, &fi) in f.iter().enumerate() {
                    y += lam.get(&[j, i]) * fi * fi;
                }
                if layer.is_vectorized() {
                    out.set(&[bi, j * (k + 1)], y);
                    for (i, &fi) in f.iter().enumerate() {
                        out.set(&[bi, j * (k + 1) + 1 + i], fi);
                    }
                } else {
                    out.set(&[bi, j], y);
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_reference() {
        let mut rng = Rng::seed_from(1);
        let layer = EfficientQuadraticLinear::new(7, 3, 2, &mut rng);
        let x = Tensor::randn(&[4, 7], &mut rng);
        let expected = reference(&layer, &x);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let y = layer.forward(&mut g, xv);
        assert!(g.value(y).allclose(&expected, 1e-4));
    }

    #[test]
    fn scalar_output_matches_reference() {
        let mut rng = Rng::seed_from(2);
        let layer = EfficientQuadraticLinear::new_scalar_output(5, 4, 3, &mut rng);
        assert_eq!(layer.out_features(), 4);
        let x = Tensor::randn(&[3, 5], &mut rng);
        let expected = reference(&layer, &x);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let y = layer.forward(&mut g, xv);
        assert!(g.value(y).allclose(&expected, 1e-4));
    }

    #[test]
    fn gradcheck_through_input_and_all_params() {
        let mut rng = Rng::seed_from(3);
        let layer = EfficientQuadraticLinear::new(4, 2, 2, &mut rng);
        let x = Tensor::randn(&[3, 4], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let y = layer.forward(g, v);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            3e-2
        ));
        // parameter gradients: backward into Parameter storage vs central
        // finite differences on the parameter value
        let input = Tensor::from_fn(&[2, 4], |i| (i as f32) * 0.3 - 1.0);
        let eval = |layer: &EfficientQuadraticLinear| -> f32 {
            let mut g = Graph::new();
            let xv = g.leaf(input.clone());
            let y = layer.forward(&mut g, xv);
            let sq = g.square(y);
            let s = g.sum_all(sq);
            g.value(s).data()[0]
        };
        for p in layer.params() {
            p.zero_grad();
            let mut g = Graph::new();
            let xv = g.leaf(input.clone());
            let y = layer.forward(&mut g, xv);
            let sq = g.square(y);
            let s = g.sum_all(sq);
            g.backward(s);
            let analytic = p.grad();
            let base = p.value();
            let eps = 1e-2f32;
            for i in 0..base.numel() {
                let mut plus = base.clone();
                plus.data_mut()[i] += eps;
                p.set_value(plus);
                let fp = eval(&layer);
                let mut minus = base.clone();
                minus.data_mut()[i] -= eps;
                p.set_value(minus);
                let fm = eval(&layer);
                p.set_value(base.clone());
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic.data()[i];
                let denom = 1.0f32.max(a.abs()).max(numeric.abs());
                assert!(
                    (a - numeric).abs() <= 5e-2 * denom,
                    "param {} index {i}: analytic {a} vs numeric {numeric}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn quadratic_matrix_reconstruction_matches_form() {
        let mut rng = Rng::seed_from(4);
        let layer = EfficientQuadraticLinear::new(6, 2, 3, &mut rng);
        let mj = layer.quadratic_matrix(1);
        // evaluate xᵀMx and compare against the layer's quadratic part
        let x = Tensor::randn(&[1, 6], &mut rng);
        let form = qn_linalg::quadratic_form(&x.reshape(&[6]).unwrap(), &mj);
        let out = {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let y = layer.forward(&mut g, xv);
            g.value(y).clone()
        };
        // y for neuron 1 lives at column 1*(k+1); subtract linear part + bias
        let w = layer.w.value();
        let b = layer.b.value();
        let mut linear = b.get(&[1]);
        for i in 0..6 {
            linear += w.get(&[1, i]) * x.get(&[0, i]);
        }
        let y_quad = out.get(&[0, 4]) - linear;
        assert!((y_quad - form).abs() < 1e-3, "{y_quad} vs {form}");
    }

    #[test]
    fn costs_match_paper_formula() {
        let mut rng = Rng::seed_from(5);
        let (n, m, k, b) = (32usize, 5usize, 9usize, 7usize);
        let layer = EfficientQuadraticLinear::new(n, m, k, &mut rng);
        let c = layer.costs(&[b, n]);
        let per_neuron = ((k + 1) * n + 2 * k) as u64;
        assert_eq!(c.macs, (b * m) as u64 * per_neuron);
        assert_eq!(c.output, vec![b, m * (k + 1)]);
        // params: (k+1)n + k per neuron, plus m biases (excluded by paper)
        assert_eq!(layer.param_count(), m * ((k + 1) * n + k) + m);
    }

    #[test]
    fn lambda_param_is_tagged() {
        let mut rng = Rng::seed_from(6);
        let layer = EfficientQuadraticLinear::new(4, 2, 2, &mut rng);
        let (lambda, other) = crate::split_lambda_params(layer.params());
        assert_eq!(lambda.len(), 1);
        assert_eq!(other.len(), 3);
        assert!(lambda[0].same_storage(layer.lambda_param()));
    }

    #[test]
    fn q_columns_initialized_orthonormal() {
        let mut rng = Rng::seed_from(7);
        let layer = EfficientQuadraticLinear::new(10, 3, 4, &mut rng);
        let q = layer.q.value();
        for j in 0..3 {
            let qj = q.slice_axis(0, j * 4, (j + 1) * 4); // [k, n], rows orthonormal
            let gram = qj.matmul_transb(&qj); // [k, k]
            assert!(gram.allclose(&Tensor::eye(4), 1e-4), "neuron {j}");
        }
    }

    #[test]
    #[should_panic(expected = "rank k=5")]
    fn rank_exceeding_inputs_panics() {
        let mut rng = Rng::seed_from(8);
        EfficientQuadraticLinear::new(4, 1, 5, &mut rng);
    }
}
