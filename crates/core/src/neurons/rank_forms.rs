//! Rank-factorized comparator neurons: Bu & Karpatne \[23\], Jiang et al.
//! \[18\], Fan et al. (Quad-1) \[19\] and Xu et al. (Quad-2 / QuadraLib)
//! \[21\].

use crate::complexity::NeuronFamily;
use qn_autograd::{Exec, Parameter, Var};
use qn_nn::{kaiming_normal, Costs, Module, ParamVisitor};
use qn_tensor::Rng;
#[cfg(test)]
use qn_tensor::Tensor;

fn weight(name: &str, m: usize, n: usize, rng: &mut Rng) -> Parameter {
    Parameter::named(name, kaiming_normal(&[m, n], n, rng))
}

/// Quadratic-factor weights start small so the product term `(w₁ᵀx)(w₂ᵀx)`
/// begins near zero and the neuron trains from its linear behaviour — the
/// initialization trick QuadraLib \[21\] relies on for trainability.
fn quad_weight(name: &str, m: usize, n: usize, rng: &mut Rng) -> Parameter {
    Parameter::named(name, kaiming_normal(&[m, n], n, rng).scale(0.25))
}

/// `y = (w₁ᵀx)(w₂ᵀx) + w₁ᵀx` — the quadratic-residual neuron of Bu &
/// Karpatne (SDM 2021) \[23\]. 2n parameters per neuron.
#[derive(Debug)]
pub struct FactorizedQuadraticLinear {
    w1: Parameter,
    w2: Parameter,
    n: usize,
    m: usize,
}

impl FactorizedQuadraticLinear {
    /// Creates a layer of `units` neurons over `in_features` inputs.
    pub fn new(in_features: usize, units: usize, rng: &mut Rng) -> Self {
        FactorizedQuadraticLinear {
            w1: weight("factorized.w1", units, in_features, rng),
            w2: quad_weight("factorized.w2", units, in_features, rng),
            n: in_features,
            m: units,
        }
    }
}

impl Module for FactorizedQuadraticLinear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let w1 = g.param(&self.w1);
        let w2 = g.param(&self.w2);
        let a = g.matmul_transb(x, w1);
        let b = g.matmul_transb(x, w2);
        let ab = g.mul(a, b);
        g.add(ab, a)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("w1", &self.w1);
        v.param("w2", &self.w2);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        Costs {
            macs: input[0] as u64
                * self.m as u64
                * NeuronFamily::Factorized.complexity(self.n as u64, 1).macs,
            output: vec![input[0], self.m],
        }
    }
}

/// `y = xᵀQ₁ᵏ(Q₂ᵏ)ᵀx + wᵀx` — the unsymmetric low-rank neuron of Jiang et
/// al. (NCAA 2020) \[18\]. 2kn + n parameters per neuron: twice the
/// quadratic-factor cost of the proposed symmetric `QᵏΛᵏ(Qᵏ)ᵀ` form.
#[derive(Debug)]
pub struct LowRankQuadraticLinear {
    q1: Parameter,
    q2: Parameter,
    w: Parameter,
    n: usize,
    m: usize,
    k: usize,
}

impl LowRankQuadraticLinear {
    /// Creates a layer of `units` rank-`k` neurons.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > in_features`.
    pub fn new(in_features: usize, units: usize, k: usize, rng: &mut Rng) -> Self {
        assert!(
            k >= 1 && k <= in_features,
            "rank k={k} must be in 1..={in_features}"
        );
        LowRankQuadraticLinear {
            q1: quad_weight("lowrank.q1", units * k, in_features, rng),
            q2: quad_weight("lowrank.q2", units * k, in_features, rng),
            w: weight("lowrank.w", units, in_features, rng),
            n: in_features,
            m: units,
            k,
        }
    }

    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.k
    }
}

impl Module for LowRankQuadraticLinear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let batch = g.value(x).shape().dim(0);
        let q1 = g.param(&self.q1);
        let q2 = g.param(&self.q2);
        let f1 = g.matmul_transb(x, q1);
        let f2 = g.matmul_transb(x, q2);
        let f1 = g.reshape(f1, &[batch, self.m, self.k]);
        let f2 = g.reshape(f2, &[batch, self.m, self.k]);
        let prod = g.mul(f1, f2);
        let y2 = g.sum_axis(prod, 2); // [B, m]
        let w = g.param(&self.w);
        let lin = g.matmul_transb(x, w);
        g.add(y2, lin)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("q1", &self.q1);
        v.param("q2", &self.q2);
        v.param("w", &self.w);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        Costs {
            macs: input[0] as u64
                * self.m as u64
                * NeuronFamily::LowRank
                    .complexity(self.n as u64, self.k as u64)
                    .macs,
            output: vec![input[0], self.m],
        }
    }
}

/// `y = (w₁ᵀx)(w₂ᵀx) + w₃ᵀ(x⊙²)` — "Quad-1", Fan et al. \[19\].
#[derive(Debug)]
pub struct Quad1Linear {
    w1: Parameter,
    w2: Parameter,
    w3: Parameter,
    n: usize,
    m: usize,
}

impl Quad1Linear {
    /// Creates a layer of `units` neurons.
    pub fn new(in_features: usize, units: usize, rng: &mut Rng) -> Self {
        Quad1Linear {
            w1: quad_weight("quad1.w1", units, in_features, rng),
            w2: quad_weight("quad1.w2", units, in_features, rng),
            // the x⊙² term is non-negative with a large mean; a small w₃
            // keeps the initial output centred
            w3: quad_weight("quad1.w3", units, in_features, rng),
            n: in_features,
            m: units,
        }
    }
}

impl Module for Quad1Linear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let w1 = g.param(&self.w1);
        let w2 = g.param(&self.w2);
        let w3 = g.param(&self.w3);
        let a = g.matmul_transb(x, w1);
        let b = g.matmul_transb(x, w2);
        let ab = g.mul(a, b);
        let xsq = g.square(x);
        let c = g.matmul_transb(xsq, w3);
        g.add(ab, c)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("w1", &self.w1);
        v.param("w2", &self.w2);
        v.param("w3", &self.w3);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        Costs {
            macs: input[0] as u64
                * self.m as u64
                * NeuronFamily::Quad1.complexity(self.n as u64, 1).macs,
            output: vec![input[0], self.m],
        }
    }
}

/// `y = (w₁ᵀx)(w₂ᵀx) + w₃ᵀx` — "Quad-2", Xu et al. (QuadraLib, MLSys 2022)
/// \[21\].
#[derive(Debug)]
pub struct Quad2Linear {
    w1: Parameter,
    w2: Parameter,
    w3: Parameter,
    n: usize,
    m: usize,
}

impl Quad2Linear {
    /// Creates a layer of `units` neurons.
    pub fn new(in_features: usize, units: usize, rng: &mut Rng) -> Self {
        Quad2Linear {
            w1: quad_weight("quad2.w1", units, in_features, rng),
            w2: quad_weight("quad2.w2", units, in_features, rng),
            w3: weight("quad2.w3", units, in_features, rng),
            n: in_features,
            m: units,
        }
    }
}

impl Module for Quad2Linear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let w1 = g.param(&self.w1);
        let w2 = g.param(&self.w2);
        let w3 = g.param(&self.w3);
        let a = g.matmul_transb(x, w1);
        let b = g.matmul_transb(x, w2);
        let ab = g.mul(a, b);
        let c = g.matmul_transb(x, w3);
        g.add(ab, c)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("w1", &self.w1);
        v.param("w2", &self.w2);
        v.param("w3", &self.w3);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        Costs {
            macs: input[0] as u64
                * self.m as u64
                * NeuronFamily::Quad2.complexity(self.n as u64, 1).macs,
            output: vec![input[0], self.m],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::{gradcheck, Graph};

    fn dotrow(w: &Tensor, j: usize, x: &Tensor, bi: usize, n: usize) -> f32 {
        (0..n).map(|i| w.get(&[j, i]) * x.get(&[bi, i])).sum()
    }

    #[test]
    fn factorized_matches_formula() {
        let mut rng = Rng::seed_from(1);
        let layer = FactorizedQuadraticLinear::new(5, 2, &mut rng);
        let x = Tensor::randn(&[3, 5], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        for bi in 0..3 {
            for j in 0..2 {
                let a = dotrow(&layer.w1.value(), j, &x, bi, 5);
                let b = dotrow(&layer.w2.value(), j, &x, bi, 5);
                let expected = a * b + a;
                assert!((g.value(y).get(&[bi, j]) - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn low_rank_matches_bilinear_form() {
        let mut rng = Rng::seed_from(2);
        let layer = LowRankQuadraticLinear::new(6, 2, 3, &mut rng);
        let x = Tensor::randn(&[2, 6], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        for bi in 0..2 {
            for j in 0..2 {
                let mut quad = 0.0f32;
                for i in 0..3 {
                    let f1 = dotrow(&layer.q1.value(), j * 3 + i, &x, bi, 6);
                    let f2 = dotrow(&layer.q2.value(), j * 3 + i, &x, bi, 6);
                    quad += f1 * f2;
                }
                let lin = dotrow(&layer.w.value(), j, &x, bi, 6);
                assert!((g.value(y).get(&[bi, j]) - (quad + lin)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn quad1_matches_formula() {
        let mut rng = Rng::seed_from(3);
        let layer = Quad1Linear::new(4, 2, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        for bi in 0..2 {
            for j in 0..2 {
                let a = dotrow(&layer.w1.value(), j, &x, bi, 4);
                let b = dotrow(&layer.w2.value(), j, &x, bi, 4);
                let xsq = x.map(|v| v * v);
                let c = dotrow(&layer.w3.value(), j, &xsq, bi, 4);
                assert!((g.value(y).get(&[bi, j]) - (a * b + c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn quad2_matches_formula() {
        let mut rng = Rng::seed_from(4);
        let layer = Quad2Linear::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = layer.forward(&mut g, xv);
        for bi in 0..2 {
            for j in 0..3 {
                let a = dotrow(&layer.w1.value(), j, &x, bi, 4);
                let b = dotrow(&layer.w2.value(), j, &x, bi, 4);
                let c = dotrow(&layer.w3.value(), j, &x, bi, 4);
                assert!((g.value(y).get(&[bi, j]) - (a * b + c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn all_rank_forms_gradcheck() {
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let layers: Vec<Box<dyn Module>> = vec![
            Box::new(FactorizedQuadraticLinear::new(4, 2, &mut rng)),
            Box::new(LowRankQuadraticLinear::new(4, 2, 2, &mut rng)),
            Box::new(Quad1Linear::new(4, 2, &mut rng)),
            Box::new(Quad2Linear::new(4, 2, &mut rng)),
        ];
        for (i, layer) in layers.iter().enumerate() {
            assert!(
                gradcheck(
                    |g, v| {
                        let y = layer.forward(g, v);
                        let sq = g.square(y);
                        g.sum_all(sq)
                    },
                    &x,
                    1e-2,
                    3e-2
                ),
                "layer {i} failed"
            );
        }
    }

    #[test]
    fn param_counts_match_table1() {
        let mut rng = Rng::seed_from(6);
        let n = 10;
        assert_eq!(
            FactorizedQuadraticLinear::new(n, 1, &mut rng).param_count(),
            2 * n
        );
        assert_eq!(
            LowRankQuadraticLinear::new(n, 1, 3, &mut rng).param_count(),
            2 * 3 * n + n
        );
        assert_eq!(Quad1Linear::new(n, 1, &mut rng).param_count(), 3 * n);
        assert_eq!(Quad2Linear::new(n, 1, &mut rng).param_count(), 3 * n);
    }
}
