//! # qn-core
//!
//! The paper's contribution: **computational and storage efficient quadratic
//! neurons** (Chen et al., DATE 2024), plus every comparator neuron family
//! from the paper's Table I, implemented from scratch on the `qn-autograd`
//! tape.
//!
//! The proposed neuron computes
//!
//! ```text
//! y  = xᵀ Qᵏ Λᵏ (Qᵏ)ᵀ x  +  wᵀx + b      (rank-k symmetric quadratic + linear)
//! fᵏ = (Qᵏ)ᵀ x                            (intermediate features, reused)
//! output = { y, fᵏ }                       (k + 1 channels per neuron)
//! ```
//!
//! - [`neurons::EfficientQuadraticLinear`] / [`neurons::EfficientQuadraticConv2d`]
//!   — the proposed neuron in dense and convolutional form.
//! - [`neurons`] also hosts the baselines: the general quadratic neuron
//!   (Zoumpourlis et al.), the no-linear variant (Mantini & Shah), the
//!   factorized neuron (Bu & Karpatne), the unsymmetric low-rank neuron
//!   (Jiang et al.), Quad-1 (Fan et al.), Quad-2 (Xu et al. / QuadraLib) and
//!   the kervolutional neuron (Wang et al.).
//! - [`complexity`] — the closed-form parameter/MAC models of Table I,
//!   cross-checked in tests against the instrumented costs of the layers.
//! - [`compress`] — the paper's §III-A procedure: symmetrize a trained
//!   general quadratic matrix (Lemma 1) and project it onto its top-k
//!   eigenspace (Eckart–Young-optimal).
//! - [`NeuronSpec`] — a factory enum the model zoo uses to build networks
//!   with pluggable neuron kinds.
//!
//! # Example
//!
//! ```
//! use qn_autograd::Graph;
//! use qn_core::neurons::EfficientQuadraticLinear;
//! use qn_nn::Module;
//! use qn_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! // 2 neurons over 8 inputs at rank 3: output width 2 * (3 + 1) = 8
//! let layer = EfficientQuadraticLinear::new(8, 2, 3, &mut rng);
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::randn(&[5, 8], &mut rng));
//! let y = layer.forward(&mut g, x);
//! assert_eq!(g.value(y).shape().dims(), &[5, 8]);
//! ```

pub mod complexity;
pub mod compress;
pub mod neurons;
mod spec;

pub use spec::NeuronSpec;

/// Diagnostic name carried by every quadratic eigenvalue parameter `Λᵏ`, so
/// optimizers can place them in a dedicated low-learning-rate group (the
/// paper trains `Λᵏ` at 1e-4…1e-6 while the network uses 0.1).
pub const LAMBDA_PARAM_NAME: &str = "quad.lambda";

/// Splits parameters into (lambda, other) groups by [`LAMBDA_PARAM_NAME`].
pub fn split_lambda_params(
    params: Vec<qn_autograd::Parameter>,
) -> (Vec<qn_autograd::Parameter>, Vec<qn_autograd::Parameter>) {
    params
        .into_iter()
        .partition(|p| p.name() == LAMBDA_PARAM_NAME)
}
