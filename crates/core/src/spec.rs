use crate::neurons::{
    EfficientQuadraticConv2d, EfficientQuadraticLinear, FactorizedQuadraticLinear,
    KervolutionLinear, LowRankQuadraticLinear, PatchConv2d, Quad1Linear, Quad2Linear,
};
use qn_nn::{Conv2d, Module};
use qn_tensor::{Conv2dSpec, Rng};

/// Factory for pluggable neuron kinds, used by the model zoo to build the
/// same architecture (ResNet, Transformer) with any neuron family the paper
/// compares.
///
/// [`NeuronSpec::build_conv`] returns the layer **and the channel count it
/// actually produces**: the proposed neuron emits `k + 1` channels per
/// filter, so a request for `target_channels` is served by
/// `round(target / (k+1))` filters — the mechanism by which the paper needs
/// fewer neurons for the same feature-map width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NeuronSpec {
    /// Conventional linear convolution (the baseline).
    Linear,
    /// The paper's neuron with vectorized output, rank `rank`.
    EfficientQuadratic {
        /// Decomposition rank `k`.
        rank: usize,
    },
    /// Ablation: the paper's neuron without the `fᵏ` outputs.
    EfficientQuadraticScalar {
        /// Decomposition rank `k`.
        rank: usize,
    },
    /// Unsymmetric low-rank neuron of Jiang et al. \[18\].
    LowRank {
        /// Decomposition rank `k`.
        rank: usize,
    },
    /// Quad-1 of Fan et al. \[19\].
    Quad1,
    /// Quad-2 of Xu et al. (QuadraLib) \[21\].
    Quad2,
    /// Quadratic-residual neuron of Bu & Karpatne \[23\].
    Factorized,
    /// Polynomial kervolution of Wang et al. \[14\].
    Kervolution {
        /// Polynomial degree `p`.
        degree: i32,
        /// Kernel offset `c`.
        offset: f32,
    },
}

impl NeuronSpec {
    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            NeuronSpec::Linear => "linear".into(),
            NeuronSpec::EfficientQuadratic { rank } => format!("ours(k={rank})"),
            NeuronSpec::EfficientQuadraticScalar { rank } => format!("ours-scalar(k={rank})"),
            NeuronSpec::LowRank { rank } => format!("low-rank(k={rank})"),
            NeuronSpec::Quad1 => "quad-1".into(),
            NeuronSpec::Quad2 => "quad-2".into(),
            NeuronSpec::Factorized => "factorized".into(),
            NeuronSpec::Kervolution { degree, .. } => format!("kervolution(p={degree})"),
        }
    }

    /// How many channels a conv layer built for `target_channels` actually
    /// produces.
    pub fn actual_channels(&self, target_channels: usize) -> usize {
        match self {
            NeuronSpec::EfficientQuadratic { rank } => {
                let per = rank + 1;
                let filters = (target_channels + per / 2).max(1) / per;
                filters.max(1) * per
            }
            _ => target_channels,
        }
    }

    /// Builds a convolutional layer of this neuron kind, returning the layer
    /// and the channel count it produces.
    ///
    /// # Panics
    ///
    /// Panics if a configured rank exceeds the patch length.
    pub fn build_conv(
        &self,
        in_channels: usize,
        target_channels: usize,
        conv: Conv2dSpec,
        rng: &mut Rng,
    ) -> (Box<dyn Module>, usize) {
        let n = conv.patch_len(in_channels);
        match self {
            NeuronSpec::Linear => {
                let layer = Conv2d::new(in_channels, target_channels, conv, false, rng);
                (Box::new(layer), target_channels)
            }
            NeuronSpec::EfficientQuadratic { rank } => {
                let actual = self.actual_channels(target_channels);
                let filters = actual / (rank + 1);
                let layer =
                    EfficientQuadraticConv2d::efficient(in_channels, filters, *rank, conv, rng);
                (Box::new(layer), actual)
            }
            NeuronSpec::EfficientQuadraticScalar { rank } => {
                let dense =
                    EfficientQuadraticLinear::new_scalar_output(n, target_channels, *rank, rng);
                (
                    Box::new(PatchConv2d::new(dense, in_channels, conv)),
                    target_channels,
                )
            }
            NeuronSpec::LowRank { rank } => {
                let dense = LowRankQuadraticLinear::new(n, target_channels, *rank, rng);
                (
                    Box::new(PatchConv2d::new(dense, in_channels, conv)),
                    target_channels,
                )
            }
            NeuronSpec::Quad1 => {
                let dense = Quad1Linear::new(n, target_channels, rng);
                (
                    Box::new(PatchConv2d::new(dense, in_channels, conv)),
                    target_channels,
                )
            }
            NeuronSpec::Quad2 => {
                let dense = Quad2Linear::new(n, target_channels, rng);
                (
                    Box::new(PatchConv2d::new(dense, in_channels, conv)),
                    target_channels,
                )
            }
            NeuronSpec::Factorized => {
                let dense = FactorizedQuadraticLinear::new(n, target_channels, rng);
                (
                    Box::new(PatchConv2d::new(dense, in_channels, conv)),
                    target_channels,
                )
            }
            NeuronSpec::Kervolution { degree, offset } => {
                let dense = KervolutionLinear::new(n, target_channels, *offset, *degree, rng);
                (
                    Box::new(PatchConv2d::new(dense, in_channels, conv)),
                    target_channels,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::Graph;
    use qn_tensor::Tensor;

    #[test]
    fn actual_channels_rounds_to_filter_multiples() {
        let s = NeuronSpec::EfficientQuadratic { rank: 3 };
        assert_eq!(s.actual_channels(16), 16); // 4 filters × 4
        assert_eq!(s.actual_channels(10), 12); // 3 filters (2.5 rounds up) × 4
        assert_eq!(s.actual_channels(2), 4); // at least one filter
        assert_eq!(NeuronSpec::Linear.actual_channels(10), 10);
    }

    #[test]
    fn every_spec_builds_and_runs() {
        let mut rng = Rng::seed_from(1);
        let conv = Conv2dSpec::new(3, 1, 1);
        let specs = [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 3 },
            NeuronSpec::EfficientQuadraticScalar { rank: 3 },
            NeuronSpec::LowRank { rank: 2 },
            NeuronSpec::Quad1,
            NeuronSpec::Quad2,
            NeuronSpec::Factorized,
            NeuronSpec::Kervolution {
                degree: 3,
                offset: 1.0,
            },
        ];
        for spec in specs {
            let (layer, actual) = spec.build_conv(2, 8, conv, &mut rng);
            let mut g = Graph::new();
            let x = g.leaf(Tensor::randn(&[1, 2, 5, 5], &mut rng));
            let y = layer.forward(&mut g, x);
            assert_eq!(
                g.value(y).shape().dims(),
                &[1, actual, 5, 5],
                "spec {} produced wrong shape",
                spec.label()
            );
            assert_eq!(layer.costs(&[1, 2, 5, 5]).output, vec![1, actual, 5, 5]);
        }
    }

    #[test]
    fn efficient_spec_matches_linear_cost_per_channel() {
        // §III-C: amortized per-output cost is n + k/(k+1) vs n for linear —
        // at the same channel width the quadratic layer costs within ~2% of
        // the linear one. (The paper's savings arise at the network level:
        // the extra expressivity lets a *shallower/narrower* net match a
        // bigger linear baseline — Fig. 4.)
        let mut rng = Rng::seed_from(2);
        let conv = Conv2dSpec::new(3, 1, 1);
        let (linear, lc) = NeuronSpec::Linear.build_conv(8, 16, conv, &mut rng);
        let (ours, oc) =
            NeuronSpec::EfficientQuadratic { rank: 3 }.build_conv(8, 16, conv, &mut rng);
        assert_eq!(lc, oc);
        let ratio = ours.param_count() as f64 / linear.param_count() as f64;
        assert!(ratio < 1.02, "per-channel overhead too large: {ratio}");
        assert!(ratio > 0.95, "unexpectedly cheap: {ratio}");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            NeuronSpec::Linear,
            NeuronSpec::EfficientQuadratic { rank: 9 },
            NeuronSpec::EfficientQuadraticScalar { rank: 9 },
            NeuronSpec::LowRank { rank: 9 },
            NeuronSpec::Quad1,
            NeuronSpec::Quad2,
            NeuronSpec::Factorized,
            NeuronSpec::Kervolution {
                degree: 3,
                offset: 1.0,
            },
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
