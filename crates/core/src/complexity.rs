//! Closed-form parameter and MAC models for every neuron family — the
//! paper's Table I, as executable code.
//!
//! Conventions follow the paper: `n` is the number of neuron inputs, `k` the
//! decomposition rank, bias terms are ignored, and "MAC" counts
//! multiply–accumulate operations of one forward evaluation of one neuron.

/// Per-neuron parameter and computation cost, plus how many scalar outputs
/// the neuron produces (1 for all prior work, `k + 1` for the proposed
/// neuron with vectorized output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Complexity {
    /// Trainable parameters per neuron.
    pub params: u64,
    /// Multiply–accumulates per forward evaluation.
    pub macs: u64,
    /// Scalar outputs per neuron.
    pub outputs: u64,
}

impl Complexity {
    /// Parameters amortized per output channel.
    pub fn params_per_output(&self) -> f64 {
        self.params as f64 / self.outputs as f64
    }

    /// MACs amortized per output channel.
    pub fn macs_per_output(&self) -> f64 {
        self.macs as f64 / self.outputs as f64
    }
}

/// The neuron families of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeuronFamily {
    /// Conventional linear neuron `wᵀx`.
    Linear,
    /// `xᵀMx + wᵀx` — Zoumpourlis et al., ICCV 2017 \[17\].
    General,
    /// `xᵀMx` — Mantini & Shah, ICPR 2020 \[16\].
    NoLinear,
    /// `(w₁ᵀx)(w₂ᵀx) + w₁ᵀx` — Bu & Karpatne, SDM 2021 \[23\].
    Factorized,
    /// `xᵀQ₁ᵏ(Q₂ᵏ)ᵀx + wᵀx` — Jiang et al., NCAA 2020 \[18\].
    LowRank,
    /// `(w₁ᵀx)(w₂ᵀx) + w₃ᵀ(x⊙²)` — Fan et al. \[19\].
    Quad1,
    /// `(w₁ᵀx)(w₂ᵀx) + w₃ᵀx` — Xu et al., QuadraLib, MLSys 2022 \[21\].
    Quad2,
    /// `(wᵀx + c)ᵖ` — Wang et al., CVPR 2019 \[14\] (no extra parameters).
    Kervolution,
    /// `{xᵀQᵏΛᵏ(Qᵏ)ᵀx + wᵀx, xᵀQᵏ}` — this paper.
    EfficientQuadratic,
}

impl NeuronFamily {
    /// Human-readable label used by experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            NeuronFamily::Linear => "linear",
            NeuronFamily::General => "general [17]",
            NeuronFamily::NoLinear => "no-linear [16]",
            NeuronFamily::Factorized => "factorized [23]",
            NeuronFamily::LowRank => "low-rank [18]",
            NeuronFamily::Quad1 => "quad-1 [19]",
            NeuronFamily::Quad2 => "quad-2 [21]",
            NeuronFamily::Kervolution => "kervolution [14]",
            NeuronFamily::EfficientQuadratic => "ours",
        }
    }

    /// Closed-form per-neuron complexity for `n` inputs and rank `k`
    /// (ignored by fixed-form neurons), exactly as tabulated in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or `k == 0`/`k > n` for rank-parameterized
    /// families.
    pub fn complexity(&self, n: u64, k: u64) -> Complexity {
        assert!(n > 0, "neuron needs at least one input");
        if matches!(
            self,
            NeuronFamily::LowRank | NeuronFamily::EfficientQuadratic
        ) {
            assert!(k >= 1 && k <= n, "rank k={k} must be in 1..={n}");
        }
        match self {
            NeuronFamily::Linear => Complexity {
                params: n,
                macs: n,
                outputs: 1,
            },
            NeuronFamily::General => Complexity {
                params: n * n + n,
                macs: n * n + 2 * n,
                outputs: 1,
            },
            NeuronFamily::NoLinear => Complexity {
                params: n * n,
                macs: n * n + n,
                outputs: 1,
            },
            NeuronFamily::Factorized => Complexity {
                params: 2 * n,
                macs: 2 * n + 1,
                outputs: 1,
            },
            NeuronFamily::LowRank => Complexity {
                params: 2 * k * n + n,
                macs: 2 * k * n + k + n,
                outputs: 1,
            },
            NeuronFamily::Quad1 => Complexity {
                params: 3 * n,
                macs: 4 * n + 1,
                outputs: 1,
            },
            NeuronFamily::Quad2 => Complexity {
                params: 3 * n,
                macs: 3 * n + 1,
                outputs: 1,
            },
            NeuronFamily::Kervolution => Complexity {
                params: n,
                macs: n + 1,
                outputs: 1,
            },
            NeuronFamily::EfficientQuadratic => Complexity {
                // Qᵏ: kn, Λᵏ: k, w: n  →  (k+1)n + k     (paper Eq. 9)
                // fᵏ: kn, Λ weighting + reduction: 2k, linear: n  (paper Eq. 10)
                params: (k + 1) * n + k,
                macs: (k + 1) * n + 2 * k,
                outputs: k + 1,
            },
        }
    }

    /// All families, in Table I order (linear first, ours last).
    pub fn all() -> [NeuronFamily; 9] {
        [
            NeuronFamily::Linear,
            NeuronFamily::General,
            NeuronFamily::NoLinear,
            NeuronFamily::Factorized,
            NeuronFamily::LowRank,
            NeuronFamily::Quad1,
            NeuronFamily::Quad2,
            NeuronFamily::Kervolution,
            NeuronFamily::EfficientQuadratic,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_eq9_eq10_for_ours() {
        let c = NeuronFamily::EfficientQuadratic.complexity(100, 9);
        assert_eq!(c.params, 10 * 100 + 9); // (k+1)n + k
        assert_eq!(c.macs, 10 * 100 + 18); // (k+1)n + 2k
        assert_eq!(c.outputs, 10);
    }

    #[test]
    fn amortized_cost_is_near_linear() {
        // paper §III-C: per-output cost is n + k/(k+1) params, n + 2k/(k+1)
        // MACs — negligible overhead over a linear neuron for large n.
        let n = 1024u64;
        let k = 9u64;
        let ours = NeuronFamily::EfficientQuadratic.complexity(n, k);
        let expected_params = n as f64 + k as f64 / (k + 1) as f64;
        let expected_macs = n as f64 + 2.0 * k as f64 / (k + 1) as f64;
        assert!((ours.params_per_output() - expected_params).abs() < 1e-9);
        assert!((ours.macs_per_output() - expected_macs).abs() < 1e-9);
        let linear = NeuronFamily::Linear.complexity(n, 1);
        let overhead = ours.params_per_output() / linear.params_per_output();
        assert!(overhead < 1.001, "overhead {overhead}");
    }

    #[test]
    fn general_is_quadratic_ours_is_linear_in_n() {
        let small = NeuronFamily::General.complexity(10, 1);
        let big = NeuronFamily::General.complexity(100, 1);
        assert!(big.params / small.params >= 90); // ~n² growth
        let ours_small = NeuronFamily::EfficientQuadratic.complexity(10, 3);
        let ours_big = NeuronFamily::EfficientQuadratic.complexity(100, 3);
        assert!(ours_big.params / ours_small.params <= 11); // ~n growth
    }

    #[test]
    fn ours_beats_low_rank_at_same_rank() {
        // the symmetric QΛQᵀ factorization halves [18]'s 2kn
        for &(n, k) in &[(64u64, 3u64), (256, 9), (1024, 16)] {
            let ours = NeuronFamily::EfficientQuadratic.complexity(n, k);
            let lowrank = NeuronFamily::LowRank.complexity(n, k);
            assert!(ours.params < lowrank.params);
            assert!(ours.params_per_output() < lowrank.params_per_output() / 1.5);
        }
    }

    #[test]
    fn ours_cost_does_not_scale_with_k_per_output() {
        // Table I: ours has per-output complexity n + k/(k+1), i.e. bounded
        // in k, unlike [18] whose cost is proportional to k.
        let n = 256u64;
        let at_k1 = NeuronFamily::EfficientQuadratic
            .complexity(n, 1)
            .params_per_output();
        let at_k16 = NeuronFamily::EfficientQuadratic
            .complexity(n, 16)
            .params_per_output();
        assert!((at_k16 - at_k1).abs() < 1.0);
        let lr_k1 = NeuronFamily::LowRank.complexity(n, 1).params_per_output();
        let lr_k16 = NeuronFamily::LowRank.complexity(n, 16).params_per_output();
        assert!(lr_k16 > 7.0 * lr_k1);
    }

    #[test]
    fn labels_unique() {
        let labels: Vec<&str> = NeuronFamily::all().iter().map(|f| f.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    #[should_panic(expected = "rank k=0")]
    fn zero_rank_panics() {
        NeuronFamily::EfficientQuadratic.complexity(8, 0);
    }
}
