//! The paper's §III-A construction as a model-compression pipeline:
//! symmetrize a trained general quadratic matrix (Lemma 1) and project it
//! onto its top-k eigenspace (Eckart–Young-optimal rank-k approximation),
//! yielding an [`EfficientQuadraticLinear`] layer.

use crate::neurons::{EfficientQuadraticLinear, GeneralQuadraticLinear};
use qn_autograd::Parameter;
use qn_linalg::{spectral_top_k, symmetrize};
use qn_tensor::Tensor;

/// Compresses a trained [`GeneralQuadraticLinear`] layer into the proposed
/// rank-`k` form.
///
/// Each unit's matrix `Mⱼ` is symmetrized (`(M + Mᵀ)/2`, which preserves the
/// quadratic form exactly per Lemma 1) and replaced by its top-k spectral
/// truncation `QᵏΛᵏ(Qᵏ)ᵀ`. The linear weights transfer unchanged; biases
/// start at zero. The resulting layer is built with **scalar output** so its
/// outputs align one-to-one with the source layer's.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn compress_general_layer(src: &GeneralQuadraticLinear, k: usize) -> EfficientQuadraticLinear {
    let n = src.in_features();
    let m = src.neurons();
    assert!(k >= 1 && k <= n, "rank k={k} must be in 1..={n}");
    let mut q_rows = Vec::with_capacity(m * k * n);
    let mut lambda = Vec::with_capacity(m * k);
    for j in 0..m {
        let sym = symmetrize(&src.matrix(j));
        let top = spectral_top_k(&sym, k);
        // columns of top.q become rows of the stacked Q
        let qt = top.q.transpose2(); // [k, n]
        q_rows.extend_from_slice(qt.data());
        lambda.extend_from_slice(&top.lambda);
    }
    EfficientQuadraticLinear::from_factors(
        Tensor::from_vec(q_rows, &[m * k, n]).expect("sizes consistent"),
        Tensor::from_vec(lambda, &[m, k]).expect("sizes consistent"),
        src.linear_weights(),
        Tensor::zeros(&[m]),
        false,
    )
}

/// Worst-case Frobenius error of the rank-k quadratic matrices against the
/// symmetrized originals — the quantity the Eckart–Young theorem bounds.
pub fn compression_error(
    src: &GeneralQuadraticLinear,
    compressed: &EfficientQuadraticLinear,
) -> f32 {
    let mut worst = 0.0f32;
    for j in 0..src.neurons() {
        let sym = symmetrize(&src.matrix(j));
        let err = sym.sub(&compressed.quadratic_matrix(j)).frob_norm();
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::Graph;
    use qn_nn::Module;
    use qn_tensor::Rng;

    #[test]
    fn full_rank_compression_is_exact() {
        let mut rng = Rng::seed_from(1);
        let src = GeneralQuadraticLinear::new(6, 3, &mut rng);
        let compressed = compress_general_layer(&src, 6);
        let x = Tensor::randn(&[4, 6], &mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y_src = src.forward(&mut g, xv);
        let y_cmp = compressed.forward(&mut g, xv);
        assert!(
            g.value(y_cmp).allclose(g.value(y_src), 5e-2),
            "full-rank compression must preserve outputs"
        );
        assert!(compression_error(&src, &compressed) < 1e-2);
    }

    #[test]
    fn error_decreases_monotonically_with_rank() {
        let mut rng = Rng::seed_from(2);
        let src = GeneralQuadraticLinear::new(8, 2, &mut rng);
        let mut prev = f32::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let err = compression_error(&src, &compress_general_layer(&src, k));
            assert!(
                err <= prev + 1e-4,
                "error increased at k={k}: {err} > {prev}"
            );
            prev = err;
        }
        assert!(prev < 1e-2, "full-rank error should vanish, got {prev}");
    }

    #[test]
    fn compressed_layer_has_fewer_params() {
        let mut rng = Rng::seed_from(3);
        let src = GeneralQuadraticLinear::new(32, 4, &mut rng);
        let compressed = compress_general_layer(&src, 3);
        assert!(compressed.param_count() < src.param_count() / 4);
    }

    #[test]
    fn symmetrization_means_form_is_preserved_not_matrix() {
        // Lemma 1: xᵀMx is preserved even though M itself changes.
        let mut rng = Rng::seed_from(4);
        let src = GeneralQuadraticLinear::new(5, 1, &mut rng);
        let compressed = compress_general_layer(&src, 5);
        let m_src = src.matrix(0);
        let m_cmp = compressed.quadratic_matrix(0);
        // matrices differ (original is asymmetric) ...
        assert!(!m_src.allclose(&m_cmp, 1e-3));
        // ... but the symmetrized original matches
        assert!(qn_linalg::symmetrize(&m_src).allclose(&m_cmp, 1e-2));
    }
}

/// Per-layer effective-rank report produced by [`adaptive_rank_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankReport {
    /// Index of the `Λᵏ` parameter in iteration order.
    pub layer: usize,
    /// Configured rank k.
    pub configured_rank: usize,
    /// Ranks whose |λ| exceeds the threshold, averaged over the layer's
    /// neurons.
    pub effective_rank: f32,
    /// Fraction of quadratic energy (Σλ²) retained by the surviving ranks.
    pub energy_retained: f32,
}

/// The paper's Fig. 7 observation turned into a tool: measures, for every
/// `Λᵏ` parameter, how many eigenvalue slots actually matter after training
/// (|λ| above `threshold`) — layers whose quadratic parameters collapsed to
/// zero can be served by a smaller rank or a plain linear neuron.
pub fn adaptive_rank_report(lambda_params: &[Parameter], threshold: f32) -> Vec<RankReport> {
    lambda_params
        .iter()
        .enumerate()
        .map(|(layer, p)| {
            let v = p.value();
            let (m, k) = v.dims2();
            let mut surviving = 0usize;
            let mut kept_energy = 0.0f32;
            let mut total_energy = 0.0f32;
            for j in 0..m {
                for i in 0..k {
                    let lam = v.get(&[j, i]);
                    total_energy += lam * lam;
                    if lam.abs() > threshold {
                        surviving += 1;
                        kept_energy += lam * lam;
                    }
                }
            }
            RankReport {
                layer,
                configured_rank: k,
                effective_rank: surviving as f32 / m as f32,
                energy_retained: if total_energy > 0.0 {
                    kept_energy / total_energy
                } else {
                    1.0
                },
            }
        })
        .collect()
}

/// Zeroes every `Λᵏ` entry with `|λ| <= threshold` in place, returning the
/// number of pruned entries. Pruned slots contribute neither to the
/// quadratic form nor to its gradient magnitude, emulating a reduced
/// effective rank without re-architecting the layer.
pub fn prune_lambda(lambda_params: &[Parameter], threshold: f32) -> usize {
    let mut pruned = 0usize;
    for p in lambda_params {
        let mut v = p.value();
        for x in v.data_mut() {
            if x.abs() <= threshold && *x != 0.0 {
                *x = 0.0;
                pruned += 1;
            }
        }
        p.set_value(v);
    }
    pruned
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    fn lambda(values: &[f32], m: usize, k: usize) -> Parameter {
        Parameter::named(
            crate::LAMBDA_PARAM_NAME,
            Tensor::from_vec(values.to_vec(), &[m, k]).expect("sizes consistent"),
        )
    }

    #[test]
    fn report_counts_surviving_ranks() {
        let p = lambda(&[0.5, 0.001, 0.3, 0.0], 2, 2);
        let r = adaptive_rank_report(&[p], 0.01);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].configured_rank, 2);
        assert!((r[0].effective_rank - 1.0).abs() < 1e-6); // 2 survivors / 2 neurons
        assert!(r[0].energy_retained > 0.99);
    }

    #[test]
    fn prune_zeroes_small_entries_only() {
        let p = lambda(&[0.5, 0.001, -0.002, 0.3], 2, 2);
        let n = prune_lambda(std::slice::from_ref(&p), 0.01);
        assert_eq!(n, 2);
        let v = p.value();
        assert_eq!(v.get(&[0, 1]), 0.0);
        assert_eq!(v.get(&[1, 0]), 0.0);
        assert_eq!(v.get(&[0, 0]), 0.5);
    }

    #[test]
    fn zero_threshold_prunes_nothing() {
        let p = lambda(&[0.5, 0.1], 1, 2);
        assert_eq!(prune_lambda(&[p], 0.0), 0);
    }
}
