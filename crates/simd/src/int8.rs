//! Runtime-dispatched int8 lane kernels — the integer sibling of
//! [`kernels`](crate::add_to).
//!
//! These back the quantized inference tier (`qn-tensor`'s `gemm_i8`):
//! [`dot_i8`] is the widening multiply–add inner product the int8 GEMM
//! drives, and [`quantize_to_i8`] is the `f32 → i8` rounding pass used for
//! both weight quantization and per-row activation quantization.
//!
//! ## Determinism
//!
//! Unlike the `f32` kernels, the int8 kernels are **exact at every dispatch
//! level under both kernel profiles**:
//!
//! - [`dot_i8`] accumulates `i32` products of `i8` values. Integer addition
//!   is associative, so reassociating the accumulation across lanes cannot
//!   change a single bit — the AVX2/SSE2 paths are bit-identical to the
//!   scalar loop by construction, and they run even under
//!   [`KernelProfile::Exact`](crate::KernelProfile) (the exact/fast split
//!   exists to protect `f32` seed bit-identity, which integer math never
//!   threatens).
//! - [`quantize_to_i8`] performs the identical IEEE-754 operation sequence
//!   per lane (`(x·inv + C) − C` magic-number rounding, then clamp), so its
//!   lanes are bit-exact across levels for finite inputs.
//!
//! Both contracts are enforced by `tests/int8_equivalence.rs` at every
//! reachable dispatch level.
//!
//! ## Overflow bound
//!
//! Each `i8 × i8` product has magnitude ≤ `127² = 16 129`, and the widening
//! multiply–add folds two products into one `i32` lane per step, so an
//! accumulator lane grows by ≤ `32 258` per element pair. An `i32` therefore
//! holds the exact sum for any `k ≤ 2³¹ / 32 258 ≈ 66 000` element *pairs*
//! (≈ 133 000 elements) — far beyond any reduction dimension in the
//! workspace (the largest ResNet-20 im2col `k` is 576). [`dot_i8`] documents
//! this as a caller requirement rather than checking it.

use crate::SimdLevel;

/// The magic constant for branch-free round-to-nearest-even:
/// `(v + C) − C` rounds any `|v| < 2²²` to the nearest integer-valued
/// `f32` (ties to even), because the addition forces the sum into
/// `[2²³, 2²⁴)` where the `f32` grid spacing is exactly 1.
const ROUND_MAGIC: f32 = 12_582_912.0; // 1.5 · 2²³

mod g {
    //! Generic (scalar-shaped) kernel bodies. The scalar wrappers call
    //! these directly; the vector wrappers re-implement the same
    //! operation sequence with intrinsics.

    use super::ROUND_MAGIC;

    #[inline(always)]
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (&av, &bv) in a.iter().zip(b) {
            acc += av as i32 * bv as i32;
        }
        acc
    }

    /// One lane of the quantization pass — the exact operation sequence
    /// every ISA reproduces: scale, magic-number round (ties to even),
    /// clamp to the symmetric int8 range `[-127, 127]`.
    #[inline(always)]
    pub fn quantize_lane(x: f32, inv_scale: f32) -> i8 {
        let r = (x * inv_scale + ROUND_MAGIC) - ROUND_MAGIC;
        r.clamp(-127.0, 127.0) as i8
    }

    #[inline(always)]
    pub fn quantize_to_i8(dst: &mut [i8], src: &[f32], inv_scale: f32) {
        for (d, &x) in dst.iter_mut().zip(src) {
            *d = quantize_lane(x, inv_scale);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Hand-written SSE2/AVX2 int8 kernels. The `f32` kernels share one
    //! generic body over `SimdF32`, but the int8 widening multiply–add has
    //! no portable shape — sign extension and `madd` differ structurally
    //! between ISAs — so each level is written out against the exactness
    //! contract in the module docs.

    use super::ROUND_MAGIC;
    use std::arch::x86_64::*;

    /// Sums the four `i32` lanes of an SSE register.
    ///
    /// # Safety
    ///
    /// Requires SSE2 (guaranteed on `x86_64`).
    #[inline(always)]
    unsafe fn hsum_epi32_sse2(v: __m128i) -> i32 {
        let hi = _mm_unpackhi_epi64(v, v);
        let s = _mm_add_epi32(v, hi);
        let s2 = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01));
        _mm_cvtsi128_si32(s2)
    }

    /// SSE2 widening dot product: 16 `i8` pairs per iteration, sign-extended
    /// to `i16` via compare-unpack (SSE2 has no `cvtepi8_epi16`), folded by
    /// `madd_epi16` into exact `i32` lane sums.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available (the dispatcher does).
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_i8_sse2(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len();
        let mut acc = _mm_setzero_si128();
        let zero = _mm_setzero_si128();
        let mut i = 0;
        while i + 16 <= n {
            let av = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let bv = _mm_loadu_si128(b.as_ptr().add(i).cast());
            let asign = _mm_cmpgt_epi8(zero, av);
            let bsign = _mm_cmpgt_epi8(zero, bv);
            let alo = _mm_unpacklo_epi8(av, asign);
            let ahi = _mm_unpackhi_epi8(av, asign);
            let blo = _mm_unpacklo_epi8(bv, bsign);
            let bhi = _mm_unpackhi_epi8(bv, bsign);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(alo, blo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(ahi, bhi));
            i += 16;
        }
        let mut total = hsum_epi32_sse2(acc);
        while i < n {
            total += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
            i += 1;
        }
        total
    }

    /// AVX2 widening dot product: 32 `i8` pairs per iteration via
    /// `cvtepi8_epi16` + `madd_epi16` (the `maddubs` family without its
    /// unsigned-operand signedness trap — both operands are sign-extended).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available (the dispatcher does).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 32 <= n {
            let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
            let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
            let a1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i + 16).cast()));
            let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i + 16).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a1, b1));
            i += 32;
        }
        if i + 16 <= n {
            let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
            let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
            i += 16;
        }
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let mut total = hsum_epi32_sse2(_mm_add_epi32(lo, hi));
        while i < n {
            total += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
            i += 1;
        }
        total
    }

    /// SSE2 quantization: same `(x·inv + C) − C` / clamp sequence as the
    /// scalar lane, 4 lanes at a time, narrowed through `i32`.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available (the dispatcher does).
    #[target_feature(enable = "sse2")]
    pub unsafe fn quantize_to_i8_sse2(dst: &mut [i8], src: &[f32], inv_scale: f32) {
        let n = dst.len();
        let inv = _mm_set1_ps(inv_scale);
        let magic = _mm_set1_ps(ROUND_MAGIC);
        let lo = _mm_set1_ps(-127.0);
        let hi = _mm_set1_ps(127.0);
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm_loadu_ps(src.as_ptr().add(i));
            let r = _mm_sub_ps(_mm_add_ps(_mm_mul_ps(x, inv), magic), magic);
            let c = _mm_min_ps(_mm_max_ps(r, lo), hi);
            // `c` is integral in [-127, 127]; truncation == value.
            let q = _mm_cvttps_epi32(c);
            let mut lanes = [0i32; 4];
            _mm_storeu_si128(lanes.as_mut_ptr().cast(), q);
            for (j, &l) in lanes.iter().enumerate() {
                *dst.get_unchecked_mut(i + j) = l as i8;
            }
            i += 4;
        }
        while i < n {
            *dst.get_unchecked_mut(i) = super::g::quantize_lane(*src.get_unchecked(i), inv_scale);
            i += 1;
        }
    }

    /// AVX2 quantization: 8 lanes at a time, narrowed through `i32` with
    /// in-lane packs + a permute to restore order.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available (the dispatcher does).
    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize_to_i8_avx2(dst: &mut [i8], src: &[f32], inv_scale: f32) {
        let n = dst.len();
        let inv = _mm256_set1_ps(inv_scale);
        let magic = _mm256_set1_ps(ROUND_MAGIC);
        let lo = _mm256_set1_ps(-127.0);
        let hi = _mm256_set1_ps(127.0);
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(src.as_ptr().add(i));
            let r = _mm256_sub_ps(_mm256_add_ps(_mm256_mul_ps(x, inv), magic), magic);
            let c = _mm256_min_ps(_mm256_max_ps(r, lo), hi);
            let q = _mm256_cvttps_epi32(c);
            // i32 → i16 → i8 saturating packs operate within 128-bit lanes;
            // values are already in [-127, 127] so saturation never bites,
            // and packing q with itself keeps the low half in order.
            let q16 = _mm256_packs_epi32(q, q); // [a0..a3, a0..a3 | a4..a7, a4..a7] as i16
            let q8 = _mm256_packs_epi16(q16, q16);
            let lo64 = _mm256_castsi256_si128(q8); // a0..a3 a0..a3 …
            let hi64 = _mm256_extracti128_si256(q8, 1); // a4..a7 …
            let first = _mm_cvtsi128_si32(lo64); // bytes a0..a3
            let second = _mm_cvtsi128_si32(hi64); // bytes a4..a7
            core::ptr::copy_nonoverlapping(
                first.to_le_bytes().as_ptr().cast::<i8>(),
                dst.as_mut_ptr().add(i),
                4,
            );
            core::ptr::copy_nonoverlapping(
                second.to_le_bytes().as_ptr().cast::<i8>(),
                dst.as_mut_ptr().add(i + 4),
                4,
            );
            i += 8;
        }
        while i < n {
            *dst.get_unchecked_mut(i) = super::g::quantize_lane(*src.get_unchecked(i), inv_scale);
            i += 1;
        }
    }
}

/// Widening int8 dot product `Σ a[i]·b[i]` with exact `i32` accumulation.
///
/// Bit-identical at every dispatch level and under both kernel profiles
/// (integer accumulation is associative — see the module docs). The caller
/// must keep the reduction short enough that the exact sum fits an `i32`;
/// `a.len() ≤ 133 000` is always safe (module docs).
///
/// # Panics
///
/// Panics if `a` and `b` differ in length.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
    // SAFETY: `SimdLevel::active()` never exceeds the detected CPU
    // features, so each `#[target_feature]` wrapper only runs on hardware
    // that has its ISA.
    match SimdLevel::active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::dot_i8_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::dot_i8_sse2(a, b) },
        _ => g::dot_i8(a, b),
    }
}

/// Quantizes `src` into `dst`: `dst[i] = clamp(round(src[i] · inv_scale))`
/// with round-to-nearest-even and the symmetric int8 range `[-127, 127]`
/// (`-128` is never produced, so negation stays in range).
///
/// Bit-identical across dispatch levels for finite inputs (every level runs
/// the same IEEE operation sequence per lane). Non-finite `src` values
/// produce unspecified (but in-range) codes — quantization scales come from
/// absmax passes, which surface NaN/∞ upstream.
///
/// # Panics
///
/// Panics if `dst` and `src` differ in length.
pub fn quantize_to_i8(dst: &mut [i8], src: &[f32], inv_scale: f32) {
    assert_eq!(dst.len(), src.len(), "quantize_to_i8: length mismatch");
    // SAFETY: see `dot_i8` — active level never exceeds detected features.
    match SimdLevel::active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::quantize_to_i8_avx2(dst, src, inv_scale) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::quantize_to_i8_sse2(dst, src, inv_scale) },
        _ => g::quantize_to_i8(dst, src, inv_scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_wide_reference() {
        let a: Vec<i8> = (0..100).map(|i| ((i * 37) % 255) as i8).collect();
        let b: Vec<i8> = (0..100).map(|i| ((i * 91 + 13) % 255) as i8).collect();
        let expect: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        assert_eq!(dot_i8(&a, &b) as i64, expect);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot_i8(&[], &[]), 0);
    }

    #[test]
    fn quantize_rounds_ties_to_even_and_clamps() {
        // inv_scale 1.0: values are the codes themselves.
        let src = [0.5, 1.5, 2.5, -0.5, -1.5, 200.0, -200.0, 126.7];
        let mut dst = [0i8; 8];
        quantize_to_i8(&mut dst, &src, 1.0);
        assert_eq!(dst, [0, 2, 2, 0, -2, 127, -127, 127]);
    }

    #[test]
    fn quantize_zero_scale_maps_to_zero() {
        let src = [1.0f32, -3.5, 0.0];
        let mut dst = [5i8; 3];
        quantize_to_i8(&mut dst, &src, 0.0);
        assert_eq!(dst, [0, 0, 0]);
    }
}
