//! Architecture-specific `f32` vector types behind the [`SimdF32`] trait.
//!
//! One trait, three implementations:
//!
//! - [`Avx2F32`] — 8 lanes over `__m256`, fused multiply-add via the FMA
//!   extension (`x86_64` only, requires `avx2` **and** `fma` at runtime).
//! - [`Sse2F32`] — 4 lanes over `__m128` (`x86_64` baseline, always
//!   available there). No FMA: [`SimdF32::mul_add`] rounds twice.
//! - [`ScalarF32`] — 1 lane, plain `f32` arithmetic. Its `mul_add` uses
//!   `f32::mul_add` (single rounding), so scalar-lane semantics match the
//!   FMA ISAs, not SSE2.
//!
//! Kernels are written once, generic over `S: SimdF32`, marked
//! `#[inline(always)]`, and instantiated inside thin
//! `#[target_feature(enable = ...)]` wrapper functions (see
//! `crates/simd/src/kernels.rs` and the GEMM micro-kernel in
//! `qn-tensor`). The wrapper gives LLVM permission to emit the wide
//! instructions; runtime dispatch (`SimdLevel::active()`) guarantees the
//! wrapper is only ever reached on a CPU that has them.
//!
//! # Safety model
//!
//! Every method is `unsafe fn`: calling it is sound only when the
//! implementation's instruction set is available on the executing CPU.
//! Obtaining that proof is the dispatcher's job — user code should go
//! through the safe slice kernels in this crate (or the profile-aware
//! entry points in `qn-tensor`/`qn-autograd`) rather than touching these
//! types directly.

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// A small fixed-width vector of `f32` lanes.
///
/// All lane-wise operations follow IEEE-754 single precision exactly as
/// the underlying instruction does; the only semantic differences between
/// implementations are (a) whether [`mul_add`](SimdF32::mul_add) fuses
/// (one rounding: AVX2, scalar) or not (two roundings: SSE2), and
/// (b) the fixed reduction tree shape of
/// [`reduce_add`](SimdF32::reduce_add)/[`reduce_max`](SimdF32::reduce_max).
///
/// # Safety
///
/// Implementing this trait asserts that every method is sound whenever
/// the target ISA named by the implementation is available at runtime.
/// Callers must guarantee that availability (via `SimdLevel` dispatch)
/// before invoking any method.
pub unsafe trait SimdF32: Copy {
    /// Number of `f32` lanes in one vector.
    const LANES: usize;

    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn splat(v: f32) -> Self;

    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn zero() -> Self;

    /// Unaligned load of the first `LANES` elements of `src`.
    ///
    /// # Safety
    /// ISA must be available and `src.len() >= LANES`.
    unsafe fn load(src: &[f32]) -> Self;

    /// Unaligned store into the first `LANES` elements of `dst`.
    ///
    /// # Safety
    /// ISA must be available and `dst.len() >= LANES`.
    unsafe fn store(self, dst: &mut [f32]);

    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn add(self, o: Self) -> Self;

    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn sub(self, o: Self) -> Self;

    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn mul(self, o: Self) -> Self;

    /// `self * m + a`. Single rounding on AVX2+FMA and scalar, two
    /// roundings on SSE2.
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn mul_add(self, m: Self, a: Self) -> Self;

    /// Lane-wise maximum with x86 `maxps` NaN semantics: if a lane of
    /// either operand is NaN, the lane of `o` is returned. Matches
    /// `f32::max(x, c)` for the ReLU pattern `x.max(0.0)`.
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn max(self, o: Self) -> Self;

    /// Lane-wise minimum (`minps` NaN semantics, see [`max`](SimdF32::max)).
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn min(self, o: Self) -> Self;

    /// Lane-wise IEEE division (`divps`) — correctly rounded, so results
    /// are bit-identical to scalar `/` at every level. Contrast with
    /// [`recip`](SimdF32::recip), the approximate reciprocal.
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn div(self, o: Self) -> Self;

    /// Lane-wise IEEE square root (`sqrtps`) — correctly rounded, so
    /// results are bit-identical to scalar `f32::sqrt` at every level.
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn sqrt(self) -> Self;

    /// Approximate lane-wise reciprocal, refined by two Newton–Raphson
    /// steps to ≤ ~1 ULP of `1.0 / x` for normal, finite inputs.
    /// The scalar implementation divides exactly.
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn recip(self) -> Self;

    /// Round each lane to the nearest integer-valued float, ties to even.
    /// Only defined for `|x| < 2^31`.
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn round(self) -> Self;

    /// `2^n` per lane, where each lane holds an **integer-valued** float
    /// `n` in `[-126, 127]` (exponent-bias bit trick; out-of-range inputs
    /// produce garbage, callers clamp first).
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn pow2i(self) -> Self;

    /// Sum of all lanes, using a fixed pairwise tree (the tree shape —
    /// and therefore the rounding — depends on `LANES`, which is why
    /// reductions are only ULP-equivalent across dispatch levels).
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn reduce_add(self) -> f32;

    /// Maximum over all lanes (pairwise `maxps` tree).
    ///
    /// # Safety
    /// The implementation's ISA must be available on the executing CPU.
    unsafe fn reduce_max(self) -> f32;
}

/// One-lane fallback: plain `f32` arithmetic, valid on every CPU.
///
/// `mul_add` is `f32::mul_add` (fused, single rounding) so that the
/// scalar dispatch level of the `Fast` profile has the same per-lane
/// semantics as the FMA vector ISAs.
#[derive(Copy, Clone, Debug)]
pub struct ScalarF32(pub f32);

unsafe impl SimdF32 for ScalarF32 {
    const LANES: usize = 1;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        ScalarF32(v)
    }

    #[inline(always)]
    unsafe fn zero() -> Self {
        ScalarF32(0.0)
    }

    #[inline(always)]
    unsafe fn load(src: &[f32]) -> Self {
        debug_assert!(!src.is_empty());
        ScalarF32(*src.get_unchecked(0))
    }

    #[inline(always)]
    unsafe fn store(self, dst: &mut [f32]) {
        debug_assert!(!dst.is_empty());
        *dst.get_unchecked_mut(0) = self.0;
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        ScalarF32(self.0 + o.0)
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        ScalarF32(self.0 - o.0)
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        ScalarF32(self.0 * o.0)
    }

    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        ScalarF32(self.0.mul_add(m.0, a.0))
    }

    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        // `maxps` semantics: return the second operand if either is NaN.
        ScalarF32(if self.0 > o.0 { self.0 } else { o.0 })
    }

    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        ScalarF32(if self.0 < o.0 { self.0 } else { o.0 })
    }

    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        ScalarF32(self.0 / o.0)
    }

    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        ScalarF32(self.0.sqrt())
    }

    #[inline(always)]
    unsafe fn recip(self) -> Self {
        ScalarF32(1.0 / self.0)
    }

    #[inline(always)]
    unsafe fn round(self) -> Self {
        ScalarF32(self.0.round_ties_even())
    }

    #[inline(always)]
    unsafe fn pow2i(self) -> Self {
        let n = self.0 as i32;
        ScalarF32(f32::from_bits(((n + 127) << 23) as u32))
    }

    #[inline(always)]
    unsafe fn reduce_add(self) -> f32 {
        self.0
    }

    #[inline(always)]
    unsafe fn reduce_max(self) -> f32 {
        self.0
    }
}

/// 4 × `f32` over `__m128`. SSE2 is part of the `x86_64` baseline, so
/// this level is always reachable there. No FMA: `mul_add` rounds twice.
#[cfg(target_arch = "x86_64")]
#[derive(Copy, Clone)]
pub struct Sse2F32(__m128);

#[cfg(target_arch = "x86_64")]
unsafe impl SimdF32 for Sse2F32 {
    const LANES: usize = 4;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        Sse2F32(_mm_set1_ps(v))
    }

    #[inline(always)]
    unsafe fn zero() -> Self {
        Sse2F32(_mm_setzero_ps())
    }

    #[inline(always)]
    unsafe fn load(src: &[f32]) -> Self {
        debug_assert!(src.len() >= Self::LANES);
        Sse2F32(_mm_loadu_ps(src.as_ptr()))
    }

    #[inline(always)]
    unsafe fn store(self, dst: &mut [f32]) {
        debug_assert!(dst.len() >= Self::LANES);
        _mm_storeu_ps(dst.as_mut_ptr(), self.0);
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        Sse2F32(_mm_add_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        Sse2F32(_mm_sub_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        Sse2F32(_mm_mul_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        // SSE2 has no FMA: two roundings.
        Sse2F32(_mm_add_ps(_mm_mul_ps(self.0, m.0), a.0))
    }

    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        Sse2F32(_mm_max_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        Sse2F32(_mm_min_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        Sse2F32(_mm_div_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        Sse2F32(_mm_sqrt_ps(self.0))
    }

    #[inline(always)]
    unsafe fn recip(self) -> Self {
        // rcpps (~12-bit) + two Newton-Raphson refinements.
        let one = _mm_set1_ps(1.0);
        let mut y = _mm_rcp_ps(self.0);
        for _ in 0..2 {
            let e = _mm_sub_ps(one, _mm_mul_ps(self.0, y));
            y = _mm_add_ps(y, _mm_mul_ps(y, e));
        }
        Sse2F32(y)
    }

    #[inline(always)]
    unsafe fn round(self) -> Self {
        // cvtps2dq rounds to nearest-even under the default MXCSR state.
        Sse2F32(_mm_cvtepi32_ps(_mm_cvtps_epi32(self.0)))
    }

    #[inline(always)]
    unsafe fn pow2i(self) -> Self {
        let n = _mm_cvtps_epi32(self.0);
        let biased = _mm_add_epi32(n, _mm_set1_epi32(127));
        Sse2F32(_mm_castsi128_ps(_mm_slli_epi32::<23>(biased)))
    }

    #[inline(always)]
    unsafe fn reduce_add(self) -> f32 {
        // ((a0+a2) + (a1+a3)) — fixed pairwise tree.
        let s = _mm_add_ps(self.0, _mm_movehl_ps(self.0, self.0));
        let r = _mm_add_ss(s, _mm_shuffle_ps::<0b01>(s, s));
        _mm_cvtss_f32(r)
    }

    #[inline(always)]
    unsafe fn reduce_max(self) -> f32 {
        let s = _mm_max_ps(self.0, _mm_movehl_ps(self.0, self.0));
        let r = _mm_max_ss(s, _mm_shuffle_ps::<0b01>(s, s));
        _mm_cvtss_f32(r)
    }
}

/// 8 × `f32` over `__m256` with fused multiply-add.
///
/// Requires both `avx2` and `fma` at runtime (always detected together
/// on real parts; the dispatcher checks both).
#[cfg(target_arch = "x86_64")]
#[derive(Copy, Clone)]
pub struct Avx2F32(__m256);

#[cfg(target_arch = "x86_64")]
unsafe impl SimdF32 for Avx2F32 {
    const LANES: usize = 8;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        Avx2F32(_mm256_set1_ps(v))
    }

    #[inline(always)]
    unsafe fn zero() -> Self {
        Avx2F32(_mm256_setzero_ps())
    }

    #[inline(always)]
    unsafe fn load(src: &[f32]) -> Self {
        debug_assert!(src.len() >= Self::LANES);
        Avx2F32(_mm256_loadu_ps(src.as_ptr()))
    }

    #[inline(always)]
    unsafe fn store(self, dst: &mut [f32]) {
        debug_assert!(dst.len() >= Self::LANES);
        _mm256_storeu_ps(dst.as_mut_ptr(), self.0);
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        Avx2F32(_mm256_add_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        Avx2F32(_mm256_sub_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        Avx2F32(_mm256_mul_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        Avx2F32(_mm256_fmadd_ps(self.0, m.0, a.0))
    }

    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        Avx2F32(_mm256_max_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        Avx2F32(_mm256_min_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        Avx2F32(_mm256_div_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        Avx2F32(_mm256_sqrt_ps(self.0))
    }

    #[inline(always)]
    unsafe fn recip(self) -> Self {
        let one = _mm256_set1_ps(1.0);
        let mut y = _mm256_rcp_ps(self.0);
        for _ in 0..2 {
            let e = _mm256_fnmadd_ps(self.0, y, one); // 1 - x*y, fused
            y = _mm256_fmadd_ps(y, e, y); // y + y*e
        }
        Avx2F32(y)
    }

    #[inline(always)]
    unsafe fn round(self) -> Self {
        Avx2F32(_mm256_round_ps::<
            { _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC },
        >(self.0))
    }

    #[inline(always)]
    unsafe fn pow2i(self) -> Self {
        let n = _mm256_cvtps_epi32(self.0);
        let biased = _mm256_add_epi32(n, _mm256_set1_epi32(127));
        Avx2F32(_mm256_castsi256_ps(_mm256_slli_epi32::<23>(biased)))
    }

    #[inline(always)]
    unsafe fn reduce_add(self) -> f32 {
        // Halve 8→4→2→1 with a fixed pairwise tree.
        let lo = _mm256_castps256_ps128(self.0);
        let hi = _mm256_extractf128_ps::<1>(self.0);
        let s = _mm_add_ps(lo, hi);
        let t = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let r = _mm_add_ss(t, _mm_shuffle_ps::<0b01>(t, t));
        _mm_cvtss_f32(r)
    }

    #[inline(always)]
    unsafe fn reduce_max(self) -> f32 {
        let lo = _mm256_castps256_ps128(self.0);
        let hi = _mm256_extractf128_ps::<1>(self.0);
        let s = _mm_max_ps(lo, hi);
        let t = _mm_max_ps(s, _mm_movehl_ps(s, s));
        let r = _mm_max_ss(t, _mm_shuffle_ps::<0b01>(t, t));
        _mm_cvtss_f32(r)
    }
}
