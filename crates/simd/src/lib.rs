//! # qn-simd
//!
//! One vectorized kernel layer for the whole workspace: a small portable
//! `f32` SIMD abstraction ([`arch::SimdF32`] over AVX2+FMA / SSE2 /
//! scalar), vectorized transcendental approximations ([`math`]), and
//! runtime-dispatched slice kernels (re-exported at the crate root).
//! `qn-tensor`'s GEMM micro-kernel and `qn-autograd`'s fused chains
//! build their own `#[target_feature]` kernels directly on
//! [`arch::SimdF32`]; everything else calls the safe kernels here.
//!
//! ## Dispatch: [`SimdLevel`]
//!
//! The instruction set is picked **once**, at first use, by runtime
//! feature detection (`is_x86_feature_detected!`), capped by the
//! `QN_SIMD` environment variable:
//!
//! | `QN_SIMD` | effect                                             |
//! |-----------|----------------------------------------------------|
//! | `auto` (default, also any unrecognized value) | highest detected level |
//! | `avx2`    | AVX2+FMA, clamped down if the CPU lacks it         |
//! | `sse2`    | SSE2 (the `x86_64` baseline)                       |
//! | `scalar`  | plain scalar loops                                 |
//!
//! A level is never raised above what the CPU reports, so forcing
//! `avx2` on a non-AVX2 part safely degrades instead of faulting.
//! Unrecognized values fall back to `auto`; the resolved level is
//! observable (and surfaced by `qn-serve`'s `/healthz` and `/metrics`),
//! so a typo is visible rather than silently wrong.
//!
//! ## Determinism tiers: [`KernelProfile`]
//!
//! | profile | selected by | contract |
//! |---------|-------------|----------|
//! | [`KernelProfile::Exact`] (default) | `QN_KERNEL_PROFILE=exact` | The seed scalar kernels run unchanged — bit-identical results at any thread count **and any `QN_SIMD` level** (the vector code is never entered). |
//! | [`KernelProfile::Fast`] | `QN_KERNEL_PROFILE=fast` | Vector kernels with FMA fusing and reduction reassociation; every kernel is validated against the scalar reference under the documented ULP bound (see the `kernels` module docs, e.g. [`exp_to`]). |
//!
//! `Exact` is the default because the workspace's reproducibility
//! contract (training resume, checkpoint equivalence, batched-serving
//! bit-identity) is built on it. `Fast` is the opt-in throughput tier.
//!
//! ## Forcing (tests & benches)
//!
//! [`force_level`]/[`force_profile`] override the resolved state
//! process-wide and return the previous value. They exist so equivalence
//! suites and benches can pin a code path; concurrent tests that force
//! state must serialize themselves (the property suites guard with a
//! mutex).

pub mod arch;
mod int8;
mod kernels;
pub mod math;

pub use int8::{dot_i8, quantize_to_i8};
pub use kernels::{
    adam_update, add_scalar_to, add_to, affine_channel_to, dot, exp_to, layer_norm_row, mul_to,
    reduce_max, reduce_sum, relu_to, scale_inplace, scale_to, sgd_update, sigmoid_to,
    softmax_row_inplace, square_to, sub_to, weighted_square_row,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction set the dispatched kernels run on.
///
/// Ordered: a numerically higher level strictly extends the lower ones,
/// so "cap at X" is `min(detected, X)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SimdLevel {
    /// Plain scalar loops — every CPU.
    Scalar = 1,
    /// SSE2, 4 lanes — the `x86_64` baseline.
    Sse2 = 2,
    /// AVX2 + FMA, 8 lanes.
    Avx2 = 3,
}

/// Determinism tier for the workspace's compute kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum KernelProfile {
    /// The seed scalar kernels, bit-identical at any thread count and
    /// any [`SimdLevel`]. Default.
    Exact = 1,
    /// Vectorized kernels (FMA fusing, reduction reassociation,
    /// polynomial `exp`) — ULP-bounded against the scalar reference.
    Fast = 2,
}

// Packed dispatch state. 0 = uninitialized; otherwise the enum's repr.
static ACTIVE_LEVEL: AtomicU8 = AtomicU8::new(0);
static DETECTED_LEVEL: AtomicU8 = AtomicU8::new(0);
/// The env-capped level resolved at first use, unaffected by
/// [`force_level`] — the ceiling [`available_levels`] reports.
static CAP_LEVEL: AtomicU8 = AtomicU8::new(0);
static ACTIVE_PROFILE: AtomicU8 = AtomicU8::new(0);

impl SimdLevel {
    fn from_repr(v: u8) -> Option<SimdLevel> {
        match v {
            1 => Some(SimdLevel::Scalar),
            2 => Some(SimdLevel::Sse2),
            3 => Some(SimdLevel::Avx2),
            _ => None,
        }
    }

    /// Lowercase name, matching the accepted `QN_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// `f32` lanes per vector at this level.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 4,
            SimdLevel::Avx2 => 8,
        }
    }

    /// The highest level the executing CPU supports (cached after the
    /// first call).
    pub fn detected() -> SimdLevel {
        if let Some(l) = SimdLevel::from_repr(DETECTED_LEVEL.load(Ordering::Relaxed)) {
            return l;
        }
        let l = detect();
        DETECTED_LEVEL.store(l as u8, Ordering::Relaxed);
        l
    }

    /// The level the dispatched kernels currently use:
    /// `min(detected, QN_SIMD)` resolved once at first use, unless
    /// overridden by [`force_level`].
    pub fn active() -> SimdLevel {
        if let Some(l) = SimdLevel::from_repr(ACTIVE_LEVEL.load(Ordering::Relaxed)) {
            return l;
        }
        let l = env_cap().min(SimdLevel::detected());
        CAP_LEVEL.store(l as u8, Ordering::Relaxed);
        ACTIVE_LEVEL.store(l as u8, Ordering::Relaxed);
        l
    }
}

impl KernelProfile {
    fn from_repr(v: u8) -> Option<KernelProfile> {
        match v {
            1 => Some(KernelProfile::Exact),
            2 => Some(KernelProfile::Fast),
            _ => None,
        }
    }

    /// Lowercase name, matching the accepted `QN_KERNEL_PROFILE` values.
    pub fn name(self) -> &'static str {
        match self {
            KernelProfile::Exact => "exact",
            KernelProfile::Fast => "fast",
        }
    }

    /// The profile in effect: `QN_KERNEL_PROFILE` resolved once at first
    /// use (default [`KernelProfile::Exact`]), unless overridden by
    /// [`force_profile`].
    pub fn active() -> KernelProfile {
        if let Some(p) = KernelProfile::from_repr(ACTIVE_PROFILE.load(Ordering::Relaxed)) {
            return p;
        }
        let p = match std::env::var("QN_KERNEL_PROFILE").ok().as_deref() {
            Some(s) if s.eq_ignore_ascii_case("fast") => KernelProfile::Fast,
            _ => KernelProfile::Exact,
        };
        ACTIVE_PROFILE.store(p as u8, Ordering::Relaxed);
        p
    }
}

fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

fn env_cap() -> SimdLevel {
    match std::env::var("QN_SIMD").ok().as_deref() {
        Some(s) if s.eq_ignore_ascii_case("scalar") => SimdLevel::Scalar,
        Some(s) if s.eq_ignore_ascii_case("sse2") => SimdLevel::Sse2,
        Some(s) if s.eq_ignore_ascii_case("avx2") => SimdLevel::Avx2,
        // "auto", unset, or unrecognized: no cap. The resolved level is
        // observable via /healthz, so typos surface there.
        _ => SimdLevel::Avx2,
    }
}

/// Overrides the active dispatch level process-wide (clamped to
/// [`SimdLevel::detected`] so an unsupported request can never select
/// unavailable instructions) and returns the previous level.
///
/// Intended for equivalence tests and benches; concurrent callers must
/// serialize themselves.
pub fn force_level(level: SimdLevel) -> SimdLevel {
    let prev = SimdLevel::active();
    let clamped = level.min(SimdLevel::detected());
    ACTIVE_LEVEL.store(clamped as u8, Ordering::Relaxed);
    prev
}

/// Overrides the active kernel profile process-wide and returns the
/// previous profile. Same caveats as [`force_level`].
pub fn force_profile(profile: KernelProfile) -> KernelProfile {
    let prev = KernelProfile::active();
    ACTIVE_PROFILE.store(profile as u8, Ordering::Relaxed);
    prev
}

/// Every dispatch level reachable in this process: all levels up to the
/// `QN_SIMD`-capped detected level (unaffected by [`force_level`], so a
/// test suite can enumerate targets before forcing each one).
pub fn available_levels() -> Vec<SimdLevel> {
    let cap = match SimdLevel::from_repr(CAP_LEVEL.load(Ordering::Relaxed)) {
        Some(l) => l,
        None => {
            let _ = SimdLevel::active();
            SimdLevel::from_repr(CAP_LEVEL.load(Ordering::Relaxed)).unwrap_or(SimdLevel::Scalar)
        }
    };
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= cap)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_supports_min_clamp() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
        assert_eq!(SimdLevel::Avx2.min(SimdLevel::Sse2), SimdLevel::Sse2);
    }

    #[test]
    fn names_round_trip() {
        for l in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            assert_eq!(SimdLevel::from_repr(l as u8), Some(l));
        }
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(KernelProfile::Exact.name(), "exact");
        assert_eq!(KernelProfile::Fast.name(), "fast");
    }

    #[test]
    fn detected_is_at_least_the_baseline() {
        #[cfg(target_arch = "x86_64")]
        assert!(SimdLevel::detected() >= SimdLevel::Sse2);
        assert!(SimdLevel::detected() >= SimdLevel::Scalar);
    }

    #[test]
    fn available_levels_start_at_scalar_and_are_ordered() {
        let levels = available_levels();
        assert!(!levels.is_empty());
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert!(levels.iter().all(|&l| l <= SimdLevel::detected()));
    }

    #[test]
    fn lanes_match_levels() {
        assert_eq!(SimdLevel::Scalar.lanes(), 1);
        assert_eq!(SimdLevel::Sse2.lanes(), 4);
        assert_eq!(SimdLevel::Avx2.lanes(), 8);
    }
}
