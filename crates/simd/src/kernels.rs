//! Safe, runtime-dispatched slice kernels.
//!
//! Each kernel is written once, generic over [`SimdF32`], then wrapped in
//! one `#[target_feature]` function per ISA; the public entry points pick
//! the wrapper for [`SimdLevel::active()`]. These are the building blocks
//! the `Fast` kernel profile routes through — the `Exact` profile never
//! calls into this module.
//!
//! Determinism contract per kernel (verified by
//! `tests/kernel_equivalence.rs`; "0 ULP" = bit-identical to the plain
//! scalar loop at every dispatch level):
//!
//! | kernel                         | bound vs scalar reference          |
//! |--------------------------------|------------------------------------|
//! | `add_to`/`sub_to`/`mul_to`     | 0 ULP (lane-wise, no reassociation)|
//! | `scale_to`/`add_scalar_to`     | 0 ULP                              |
//! | `square_to`/`relu_to`          | 0 ULP                              |
//! | `affine_channel_to`            | 0 ULP (same op order as scalar)    |
//! | `exp_to`/`sigmoid_to`          | ≤ 8 / ≤ 16 ULP (see [`crate::math`]) |
//! | `reduce_sum`/`dot`             | ULP-bounded (pairwise reassociation; ≤ 4·n·ε·Σ|terms|) |
//! | `reduce_max`                   | exact for non-NaN inputs           |
//! | `softmax_row_inplace`          | ≤ 32 ULP per probability           |
//! | `layer_norm_row`               | |Δ| ≤ 1e-5·(1+|ref|) per element   |
//! | `weighted_square_row`          | k < LANES: 0 ULP; k ≥ LANES: ULP-bounded partial sums |
//! | `sgd_update`/`adam_update`     | 0 ULP (no FMA, element-local; `divps`/`sqrtps` are correctly rounded) |
//!
//! NaN handling: the vector `max` ISA semantics match `x.max(0.0)` for
//! ReLU (NaN → 0), but reductions and the transcendental kernels assume
//! finite inputs — feeding NaN/Inf through the `Fast` profile yields
//! unspecified (not undefined) lane values, whereas `Exact` propagates
//! them exactly as the seed kernels did.

use crate::arch::ScalarF32;
use crate::arch::SimdF32;
#[cfg(target_arch = "x86_64")]
use crate::arch::{Avx2F32, Sse2F32};
use crate::math;
use crate::SimdLevel;

/// Stack scratch (in elements) for the small-`k` segmented branch of
/// [`weighted_square_row`].
const WSQ_BLOCK: usize = 256;

mod g {
    //! Generic kernel bodies. Everything `#[inline(always)]` so the
    //! per-ISA `#[target_feature]` wrappers fully absorb them.
    use super::*;

    #[inline(always)]
    pub unsafe fn add_to<S: SimdF32>(dst: &mut [f32], a: &[f32], b: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + S::LANES <= n {
            S::load(&a[i..]).add(S::load(&b[i..])).store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = a[i] + b[i];
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn sub_to<S: SimdF32>(dst: &mut [f32], a: &[f32], b: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + S::LANES <= n {
            S::load(&a[i..]).sub(S::load(&b[i..])).store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = a[i] - b[i];
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn mul_to<S: SimdF32>(dst: &mut [f32], a: &[f32], b: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + S::LANES <= n {
            S::load(&a[i..]).mul(S::load(&b[i..])).store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = a[i] * b[i];
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn scale_to<S: SimdF32>(dst: &mut [f32], a: &[f32], s: f32) {
        let n = dst.len();
        let sv = S::splat(s);
        let mut i = 0;
        while i + S::LANES <= n {
            S::load(&a[i..]).mul(sv).store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = a[i] * s;
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn scale_inplace<S: SimdF32>(buf: &mut [f32], s: f32) {
        let n = buf.len();
        let sv = S::splat(s);
        let mut i = 0;
        while i + S::LANES <= n {
            S::load(&buf[i..]).mul(sv).store(&mut buf[i..]);
            i += S::LANES;
        }
        while i < n {
            buf[i] *= s;
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn add_scalar_to<S: SimdF32>(dst: &mut [f32], a: &[f32], s: f32) {
        let n = dst.len();
        let sv = S::splat(s);
        let mut i = 0;
        while i + S::LANES <= n {
            S::load(&a[i..]).add(sv).store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = a[i] + s;
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn square_to<S: SimdF32>(dst: &mut [f32], a: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + S::LANES <= n {
            let v = S::load(&a[i..]);
            v.mul(v).store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = a[i] * a[i];
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn relu_to<S: SimdF32>(dst: &mut [f32], a: &[f32]) {
        let n = dst.len();
        let z = S::zero();
        let mut i = 0;
        while i + S::LANES <= n {
            S::load(&a[i..]).max(z).store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = a[i].max(0.0);
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn exp_to<S: SimdF32>(dst: &mut [f32], a: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + S::LANES <= n {
            math::exp(S::load(&a[i..])).store(&mut dst[i..]);
            i += S::LANES;
        }
        // Tail lanes run the *same approximation* one lane at a time so a
        // row's values never mix approximated and libm exponentials.
        while i < n {
            dst[i] = math::exp(ScalarF32(a[i])).0;
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn sigmoid_to<S: SimdF32>(dst: &mut [f32], a: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + S::LANES <= n {
            math::sigmoid(S::load(&a[i..])).store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = math::sigmoid(ScalarF32(a[i])).0;
            i += 1;
        }
    }

    /// `dst = (src − mean) · inv · gamma + beta` with four per-call
    /// scalars — one batch-norm channel plane. Same operation order as
    /// the scalar loop, so lane results are bit-identical to it.
    #[inline(always)]
    pub unsafe fn affine_channel_to<S: SimdF32>(
        dst: &mut [f32],
        src: &[f32],
        mean: f32,
        inv: f32,
        gamma: f32,
        beta: f32,
    ) {
        let n = dst.len();
        let (mv, iv, gv, bv) = (
            S::splat(mean),
            S::splat(inv),
            S::splat(gamma),
            S::splat(beta),
        );
        let mut i = 0;
        while i + S::LANES <= n {
            let v = S::load(&src[i..]).sub(mv).mul(iv).mul(gv).add(bv);
            v.store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = (src[i] - mean) * inv * gamma + beta;
            i += 1;
        }
    }

    #[inline(always)]
    pub unsafe fn reduce_sum<S: SimdF32>(a: &[f32]) -> f32 {
        let n = a.len();
        let mut acc = S::zero();
        let mut i = 0;
        while i + S::LANES <= n {
            acc = acc.add(S::load(&a[i..]));
            i += S::LANES;
        }
        let mut total = acc.reduce_add();
        while i < n {
            total += a[i];
            i += 1;
        }
        total
    }

    #[inline(always)]
    pub unsafe fn reduce_max<S: SimdF32>(a: &[f32]) -> f32 {
        let n = a.len();
        let mut m = f32::NEG_INFINITY;
        let mut i = 0;
        if S::LANES <= n {
            let mut acc = S::load(a);
            i = S::LANES;
            while i + S::LANES <= n {
                acc = acc.max(S::load(&a[i..]));
                i += S::LANES;
            }
            m = acc.reduce_max();
        }
        while i < n {
            m = if a[i] > m { a[i] } else { m };
            i += 1;
        }
        m
    }

    #[inline(always)]
    pub unsafe fn dot<S: SimdF32>(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let mut acc = S::zero();
        let mut i = 0;
        while i + S::LANES <= n {
            acc = S::load(&a[i..]).mul_add(S::load(&b[i..]), acc);
            i += S::LANES;
        }
        let mut total = acc.reduce_add();
        while i < n {
            total = a[i].mul_add(b[i], total);
            i += 1;
        }
        total
    }

    #[inline(always)]
    pub unsafe fn softmax_row_inplace<S: SimdF32>(row: &mut [f32]) {
        if row.is_empty() {
            return;
        }
        let n = row.len();
        let m = reduce_max::<S>(row);
        let mv = S::splat(m);
        let mut acc = S::zero();
        let mut i = 0;
        while i + S::LANES <= n {
            let e = math::exp(S::load(&row[i..]).sub(mv));
            e.store(&mut row[i..]);
            acc = acc.add(e);
            i += S::LANES;
        }
        let mut sum = acc.reduce_add();
        while i < n {
            let e = math::exp(ScalarF32(row[i] - m)).0;
            row[i] = e;
            sum += e;
            i += 1;
        }
        // Exact scalar divide once per row, then an exact lane-wise scale.
        scale_inplace::<S>(row, 1.0 / sum);
    }

    /// One layer-norm row: `dst = (src − mean(src)) / √(var(src)+eps) · gamma + beta`.
    /// Mean/variance accumulate in vector partial sums (reassociated),
    /// the per-element apply matches the scalar operation order.
    #[inline(always)]
    pub unsafe fn layer_norm_row<S: SimdF32>(
        dst: &mut [f32],
        src: &[f32],
        gamma: &[f32],
        beta: &[f32],
        eps: f32,
    ) {
        let n = src.len();
        if n == 0 {
            return;
        }
        let mean = reduce_sum::<S>(src) / n as f32;
        let mv = S::splat(mean);
        let mut acc = S::zero();
        let mut i = 0;
        while i + S::LANES <= n {
            let d = S::load(&src[i..]).sub(mv);
            acc = d.mul_add(d, acc);
            i += S::LANES;
        }
        let mut var = acc.reduce_add();
        while i < n {
            let d = src[i] - mean;
            var = d.mul_add(d, var);
            i += 1;
        }
        var /= n as f32;
        let istd = 1.0 / (var + eps).sqrt();
        let sv = S::splat(istd);
        i = 0;
        while i + S::LANES <= n {
            let v = S::load(&src[i..])
                .sub(mv)
                .mul(sv)
                .mul(S::load(&gamma[i..]))
                .add(S::load(&beta[i..]));
            v.store(&mut dst[i..]);
            i += S::LANES;
        }
        while i < n {
            dst[i] = (src[i] - mean) * istd * gamma[i] + beta[i];
            i += 1;
        }
    }

    /// Quadratic-neuron row: `out[j] = Σ_i f[j·k+i]² · lam[j·k+i]` for
    /// `j < out.len()`.
    ///
    /// `k ≥ LANES`: per-neuron vector partial sums (reassociated,
    /// ULP-bounded). `k < LANES`: a vectorized elementwise `f²·λ` pass
    /// into a stack block followed by scalar segment sums in the
    /// reference order — bit-identical to the scalar loop.
    #[inline(always)]
    pub unsafe fn weighted_square_row<S: SimdF32>(
        out: &mut [f32],
        f: &[f32],
        lam: &[f32],
        k: usize,
    ) {
        let m = out.len();
        if k == 0 {
            out.fill(0.0);
            return;
        }
        if k >= S::LANES {
            for j in 0..m {
                let fj = &f[j * k..j * k + k];
                let lj = &lam[j * k..j * k + k];
                let mut acc = S::zero();
                let mut i = 0;
                while i + S::LANES <= k {
                    let x = S::load(&fj[i..]);
                    acc = x.mul(x).mul_add(S::load(&lj[i..]), acc);
                    i += S::LANES;
                }
                let mut s = acc.reduce_add();
                while i < k {
                    s = (fj[i] * fj[i]).mul_add(lj[i], s);
                    i += 1;
                }
                out[j] = s;
            }
        } else {
            let mut tmp = [0.0f32; WSQ_BLOCK];
            let groups_per_blk = WSQ_BLOCK / k;
            let mut j = 0;
            while j < m {
                let gcount = (m - j).min(groups_per_blk);
                let nelems = gcount * k;
                let base = j * k;
                let mut i = 0;
                while i + S::LANES <= nelems {
                    let x = S::load(&f[base + i..]);
                    x.mul(x).mul(S::load(&lam[base + i..])).store(&mut tmp[i..]);
                    i += S::LANES;
                }
                while i < nelems {
                    tmp[i] = f[base + i] * f[base + i] * lam[base + i];
                    i += 1;
                }
                for gi in 0..gcount {
                    let mut s = 0.0f32;
                    for e in 0..k {
                        s += tmp[gi * k + e];
                    }
                    out[j + gi] = s;
                }
                j += gcount;
            }
        }
    }

    /// One SGD-with-momentum step over a parameter slice:
    /// `g = grad[i] + wd·value[i]; vel[i] = momentum·vel[i] + g;
    /// value[i] -= lr·vel[i]`.
    ///
    /// Element-local, no fused multiply-add — the lane results are
    /// bit-identical to the seed scalar loop at every dispatch level.
    #[inline(always)]
    pub unsafe fn sgd_update<S: SimdF32>(
        value: &mut [f32],
        vel: &mut [f32],
        grad: &[f32],
        lr: f32,
        momentum: f32,
        wd: f32,
    ) {
        let n = value.len();
        let (wdv, mv, lrv) = (S::splat(wd), S::splat(momentum), S::splat(lr));
        let mut i = 0;
        while i + S::LANES <= n {
            let g = wdv.mul(S::load(&value[i..])).add(S::load(&grad[i..]));
            let v = mv.mul(S::load(&vel[i..])).add(g);
            v.store(&mut vel[i..]);
            S::load(&value[i..]).sub(lrv.mul(v)).store(&mut value[i..]);
            i += S::LANES;
        }
        while i < n {
            let g = grad[i] + wd * value[i];
            let v = momentum * vel[i] + g;
            vel[i] = v;
            value[i] -= lr * v;
            i += 1;
        }
    }

    /// One Adam step over a parameter slice:
    /// `m[i] = b1·m[i] + (1−b1)·g; v[i] = b2·v[i] + (1−b2)·g²;
    /// value[i] -= lr·(m[i]/bias1) / (√(v[i]/bias2) + eps)`.
    ///
    /// `bias1`/`bias2` are the step-count bias corrections
    /// `1 − βᵗ` computed once by the caller. Element-local with
    /// correctly-rounded `divps`/`sqrtps` and no fused multiply-add —
    /// bit-identical to the seed scalar loop at every dispatch level.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn adam_update<S: SimdF32>(
        value: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        grad: &[f32],
        lr: f32,
        b1: f32,
        b2: f32,
        eps: f32,
        bias1: f32,
        bias2: f32,
    ) {
        let n = value.len();
        let (b1v, c1v) = (S::splat(b1), S::splat(1.0 - b1));
        let (b2v, c2v) = (S::splat(b2), S::splat(1.0 - b2));
        let (lrv, epsv) = (S::splat(lr), S::splat(eps));
        let (bias1v, bias2v) = (S::splat(bias1), S::splat(bias2));
        let mut i = 0;
        while i + S::LANES <= n {
            let g = S::load(&grad[i..]);
            let mi = b1v.mul(S::load(&m[i..])).add(c1v.mul(g));
            let vi = b2v.mul(S::load(&v[i..])).add(c2v.mul(g).mul(g));
            mi.store(&mut m[i..]);
            vi.store(&mut v[i..]);
            let mhat = mi.div(bias1v);
            let vhat = vi.div(bias2v);
            let upd = lrv.mul(mhat).div(vhat.sqrt().add(epsv));
            S::load(&value[i..]).sub(upd).store(&mut value[i..]);
            i += S::LANES;
        }
        while i < n {
            let g = grad[i];
            let mi = b1 * m[i] + (1.0 - b1) * g;
            let vi = b2 * v[i] + (1.0 - b2) * g * g;
            m[i] = mi;
            v[i] = vi;
            let mhat = mi / bias1;
            let vhat = vi / bias2;
            value[i] -= lr * mhat / (vhat.sqrt() + eps);
            i += 1;
        }
    }
}

/// Generates one wrapper module per ISA: identical signatures, each
/// function a `#[target_feature]` shell around the generic body so LLVM
/// vectorizes it for that ISA.
macro_rules! isa_kernels {
    ($modname:ident, $simd:ty, $(#[$attr:meta])*) => {
        mod $modname {
            use super::*;
            $(#[$attr])*
            pub unsafe fn add_to(d: &mut [f32], a: &[f32], b: &[f32]) { g::add_to::<$simd>(d, a, b) }
            $(#[$attr])*
            pub unsafe fn sub_to(d: &mut [f32], a: &[f32], b: &[f32]) { g::sub_to::<$simd>(d, a, b) }
            $(#[$attr])*
            pub unsafe fn mul_to(d: &mut [f32], a: &[f32], b: &[f32]) { g::mul_to::<$simd>(d, a, b) }
            $(#[$attr])*
            pub unsafe fn scale_to(d: &mut [f32], a: &[f32], s: f32) { g::scale_to::<$simd>(d, a, s) }
            $(#[$attr])*
            pub unsafe fn scale_inplace(d: &mut [f32], s: f32) { g::scale_inplace::<$simd>(d, s) }
            $(#[$attr])*
            pub unsafe fn add_scalar_to(d: &mut [f32], a: &[f32], s: f32) { g::add_scalar_to::<$simd>(d, a, s) }
            $(#[$attr])*
            pub unsafe fn square_to(d: &mut [f32], a: &[f32]) { g::square_to::<$simd>(d, a) }
            $(#[$attr])*
            pub unsafe fn relu_to(d: &mut [f32], a: &[f32]) { g::relu_to::<$simd>(d, a) }
            $(#[$attr])*
            pub unsafe fn exp_to(d: &mut [f32], a: &[f32]) { g::exp_to::<$simd>(d, a) }
            $(#[$attr])*
            pub unsafe fn sigmoid_to(d: &mut [f32], a: &[f32]) { g::sigmoid_to::<$simd>(d, a) }
            $(#[$attr])*
            pub unsafe fn affine_channel_to(d: &mut [f32], s: &[f32], mean: f32, inv: f32, ga: f32, be: f32) { g::affine_channel_to::<$simd>(d, s, mean, inv, ga, be) }
            $(#[$attr])*
            pub unsafe fn reduce_sum(a: &[f32]) -> f32 { g::reduce_sum::<$simd>(a) }
            $(#[$attr])*
            pub unsafe fn reduce_max(a: &[f32]) -> f32 { g::reduce_max::<$simd>(a) }
            $(#[$attr])*
            pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 { g::dot::<$simd>(a, b) }
            $(#[$attr])*
            pub unsafe fn softmax_row_inplace(r: &mut [f32]) { g::softmax_row_inplace::<$simd>(r) }
            $(#[$attr])*
            pub unsafe fn layer_norm_row(d: &mut [f32], s: &[f32], ga: &[f32], be: &[f32], eps: f32) { g::layer_norm_row::<$simd>(d, s, ga, be, eps) }
            $(#[$attr])*
            pub unsafe fn weighted_square_row(o: &mut [f32], f: &[f32], l: &[f32], k: usize) { g::weighted_square_row::<$simd>(o, f, l, k) }
            $(#[$attr])*
            pub unsafe fn sgd_update(va: &mut [f32], ve: &mut [f32], gr: &[f32], lr: f32, mo: f32, wd: f32) { g::sgd_update::<$simd>(va, ve, gr, lr, mo, wd) }
            $(#[$attr])*
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn adam_update(va: &mut [f32], m: &mut [f32], v: &mut [f32], gr: &[f32], lr: f32, b1: f32, b2: f32, eps: f32, c1: f32, c2: f32) { g::adam_update::<$simd>(va, m, v, gr, lr, b1, b2, eps, c1, c2) }
        }
    };
}

#[cfg(target_arch = "x86_64")]
isa_kernels!(avx2, Avx2F32, #[target_feature(enable = "avx2", enable = "fma")]);
#[cfg(target_arch = "x86_64")]
isa_kernels!(sse2, Sse2F32, #[target_feature(enable = "sse2")]);
isa_kernels!(scalar, ScalarF32, #[inline]);

/// Picks the wrapper for the active dispatch level.
///
/// SAFETY: `SimdLevel::active()` never exceeds `SimdLevel::detected()`,
/// so the `#[target_feature]` wrapper selected here only runs on a CPU
/// that reports the matching ISA.
macro_rules! dispatch {
    ($kernel:ident ( $($arg:expr),* )) => {{
        match SimdLevel::active() {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { avx2::$kernel($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => unsafe { sse2::$kernel($($arg),*) },
            _ => unsafe { scalar::$kernel($($arg),*) },
        }
    }};
}

/// `dst[i] = a[i] + b[i]`. Bit-identical to the scalar loop at every level.
///
/// # Panics
/// Panics if `dst`, `a`, and `b` lengths differ.
pub fn add_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len(), "add_to: dst/a length mismatch");
    assert_eq!(dst.len(), b.len(), "add_to: dst/b length mismatch");
    dispatch!(add_to(dst, a, b))
}

/// `dst[i] = a[i] - b[i]`. Bit-identical to the scalar loop at every level.
///
/// # Panics
/// Panics if `dst`, `a`, and `b` lengths differ.
pub fn sub_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len(), "sub_to: dst/a length mismatch");
    assert_eq!(dst.len(), b.len(), "sub_to: dst/b length mismatch");
    dispatch!(sub_to(dst, a, b))
}

/// `dst[i] = a[i] * b[i]`. Bit-identical to the scalar loop at every level.
///
/// # Panics
/// Panics if `dst`, `a`, and `b` lengths differ.
pub fn mul_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len(), "mul_to: dst/a length mismatch");
    assert_eq!(dst.len(), b.len(), "mul_to: dst/b length mismatch");
    dispatch!(mul_to(dst, a, b))
}

/// `dst[i] = a[i] * s`. Bit-identical to the scalar loop at every level.
///
/// # Panics
/// Panics if `dst` and `a` lengths differ.
pub fn scale_to(dst: &mut [f32], a: &[f32], s: f32) {
    assert_eq!(dst.len(), a.len(), "scale_to: dst/a length mismatch");
    dispatch!(scale_to(dst, a, s))
}

/// `buf[i] *= s` in place. Bit-identical to the scalar loop at every level.
pub fn scale_inplace(buf: &mut [f32], s: f32) {
    dispatch!(scale_inplace(buf, s))
}

/// `dst[i] = a[i] + s`. Bit-identical to the scalar loop at every level.
///
/// # Panics
/// Panics if `dst` and `a` lengths differ.
pub fn add_scalar_to(dst: &mut [f32], a: &[f32], s: f32) {
    assert_eq!(dst.len(), a.len(), "add_scalar_to: dst/a length mismatch");
    dispatch!(add_scalar_to(dst, a, s))
}

/// `dst[i] = a[i]²`. Bit-identical to the scalar loop at every level.
///
/// # Panics
/// Panics if `dst` and `a` lengths differ.
pub fn square_to(dst: &mut [f32], a: &[f32]) {
    assert_eq!(dst.len(), a.len(), "square_to: dst/a length mismatch");
    dispatch!(square_to(dst, a))
}

/// `dst[i] = max(a[i], 0)`. Bit-identical to `a[i].max(0.0)` at every
/// level (NaN lanes become 0, matching `f32::max`).
///
/// # Panics
/// Panics if `dst` and `a` lengths differ.
pub fn relu_to(dst: &mut [f32], a: &[f32]) {
    assert_eq!(dst.len(), a.len(), "relu_to: dst/a length mismatch");
    dispatch!(relu_to(dst, a))
}

/// `dst[i] = e^a[i]` via the [`crate::math::exp`] approximation (≤ 8 ULP).
///
/// # Panics
/// Panics if `dst` and `a` lengths differ.
pub fn exp_to(dst: &mut [f32], a: &[f32]) {
    assert_eq!(dst.len(), a.len(), "exp_to: dst/a length mismatch");
    dispatch!(exp_to(dst, a))
}

/// `dst[i] = σ(a[i])` via [`crate::math::sigmoid`] (≤ 16 ULP).
///
/// # Panics
/// Panics if `dst` and `a` lengths differ.
pub fn sigmoid_to(dst: &mut [f32], a: &[f32]) {
    assert_eq!(dst.len(), a.len(), "sigmoid_to: dst/a length mismatch");
    dispatch!(sigmoid_to(dst, a))
}

/// One batch-norm channel plane: `dst[i] = (src[i] − mean)·inv·gamma + beta`.
/// Bit-identical to the scalar loop (same operation order).
///
/// # Panics
/// Panics if `dst` and `src` lengths differ.
pub fn affine_channel_to(dst: &mut [f32], src: &[f32], mean: f32, inv: f32, gamma: f32, beta: f32) {
    assert_eq!(dst.len(), src.len(), "affine_channel_to: length mismatch");
    dispatch!(affine_channel_to(dst, src, mean, inv, gamma, beta))
}

/// Sum of `a` (vector partial sums + fixed pairwise reduction; the
/// accumulation order differs from a sequential scalar sum, so results
/// are ULP-bounded, not bit-identical, across levels).
pub fn reduce_sum(a: &[f32]) -> f32 {
    dispatch!(reduce_sum(a))
}

/// Maximum of `a` (`f32::NEG_INFINITY` for an empty slice). Exact for
/// non-NaN inputs at every level.
pub fn reduce_max(a: &[f32]) -> f32 {
    dispatch!(reduce_max(a))
}

/// Dot product with FMA accumulation where the ISA has it (ULP-bounded
/// across levels, like [`reduce_sum`]).
///
/// # Panics
/// Panics if `a` and `b` lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    dispatch!(dot(a, b))
}

/// In-place softmax over one row: `row = exp(row − max) / Σ exp(row − max)`.
/// ≤ 32 ULP per probability vs the scalar libm reference.
pub fn softmax_row_inplace(row: &mut [f32]) {
    dispatch!(softmax_row_inplace(row))
}

/// One layer-norm row (see table in the module docs for the bound).
///
/// # Panics
/// Panics if `dst`, `src`, `gamma`, and `beta` lengths differ.
pub fn layer_norm_row(dst: &mut [f32], src: &[f32], gamma: &[f32], beta: &[f32], eps: f32) {
    assert_eq!(
        dst.len(),
        src.len(),
        "layer_norm_row: dst/src length mismatch"
    );
    assert_eq!(
        src.len(),
        gamma.len(),
        "layer_norm_row: gamma length mismatch"
    );
    assert_eq!(
        src.len(),
        beta.len(),
        "layer_norm_row: beta length mismatch"
    );
    dispatch!(layer_norm_row(dst, src, gamma, beta, eps))
}

/// One SGD-with-momentum step:
/// `g = grad[i] + wd·value[i]; vel[i] = momentum·vel[i] + g;
/// value[i] -= lr·vel[i]`. Bit-identical to the scalar loop at every
/// level (element-local, no FMA).
///
/// # Panics
/// Panics if `value`, `vel`, and `grad` lengths differ.
pub fn sgd_update(
    value: &mut [f32],
    vel: &mut [f32],
    grad: &[f32],
    lr: f32,
    momentum: f32,
    wd: f32,
) {
    assert_eq!(value.len(), vel.len(), "sgd_update: vel length mismatch");
    assert_eq!(value.len(), grad.len(), "sgd_update: grad length mismatch");
    dispatch!(sgd_update(value, vel, grad, lr, momentum, wd))
}

/// One Adam step with caller-supplied bias corrections
/// `bias1 = 1 − β₁ᵗ`, `bias2 = 1 − β₂ᵗ`:
/// `m[i] = b1·m[i] + (1−b1)·g; v[i] = b2·v[i] + (1−b2)·g²;
/// value[i] -= lr·(m[i]/bias1) / (√(v[i]/bias2) + eps)`.
/// Bit-identical to the scalar loop at every level (element-local,
/// correctly-rounded div/sqrt, no FMA).
///
/// # Panics
/// Panics if `value`, `m`, `v`, and `grad` lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn adam_update(
    value: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grad: &[f32],
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    bias1: f32,
    bias2: f32,
) {
    assert_eq!(value.len(), m.len(), "adam_update: m length mismatch");
    assert_eq!(value.len(), v.len(), "adam_update: v length mismatch");
    assert_eq!(value.len(), grad.len(), "adam_update: grad length mismatch");
    dispatch!(adam_update(
        value, m, v, grad, lr, b1, b2, eps, bias1, bias2
    ))
}

/// Quadratic-neuron weighted square sum for one sample row:
/// `out[j] = Σ_{i<k} f[j·k+i]² · lam[j·k+i]`.
///
/// # Panics
/// Panics if `f` or `lam` length is not `out.len() * k`.
pub fn weighted_square_row(out: &mut [f32], f: &[f32], lam: &[f32], k: usize) {
    assert_eq!(
        f.len(),
        out.len() * k,
        "weighted_square_row: f length mismatch"
    );
    assert_eq!(
        lam.len(),
        out.len() * k,
        "weighted_square_row: lam length mismatch"
    );
    dispatch!(weighted_square_row(out, f, lam, k))
}
