//! Vectorized transcendental approximations for the `Fast` kernel profile.
//!
//! These are classic Cephes-style single-precision kernels written once,
//! generic over [`SimdF32`], and instantiated per ISA by the dispatch
//! wrappers. They are **approximations**: the `Fast` profile's softmax /
//! sigmoid paths use them, the `Exact` profile never does.
//!
//! Documented accuracy bounds (verified by the property suite in
//! `crates/simd/tests/kernel_equivalence.rs`):
//!
//! | kernel    | bound vs `f32` libm           | domain notes                          |
//! |-----------|-------------------------------|---------------------------------------|
//! | [`exp`]   | ≤ 8 ULP                       | input clamped to `[-87.33, 88.02]`;   |
//! |           |                               | outputs below ~1.2e-38 flush to the   |
//! |           |                               | smallest normal                       |
//! | [`sigmoid`] | ≤ 16 ULP                    | saturates for `x < -88` (returns a    |
//! |           |                               | subnormal instead of a smaller one)   |
//!
//! `tanh` is deliberately **not** vectorized: every cheap reformulation
//! (`2σ(2x)−1`, `(e²ˣ−1)/(e²ˣ+1)`) catastrophically cancels near zero,
//! so both profiles keep scalar `f32::tanh`.

use crate::arch::SimdF32;

/// Upper input clamp: keeps `n = round(x·log2 e)` ≤ 127 so the
/// exponent-bias trick in `pow2i` cannot overflow into the Inf pattern.
/// (`exp` of anything in `[88.02, 88.73)` is still finite in `f32`, but
/// softmax feeds `x − max(x) ≤ 0` and never gets here.)
const EXP_HI: f32 = 88.02;
/// Lower input clamp: smallest input whose true `exp` is a normal number.
const EXP_LO: f32 = -87.336_55;

const LOG2E: f32 = core::f32::consts::LOG2_E;
// ln(2) split hi/lo (Cody–Waite) so `x − n·ln2` stays exact. The hi part
// is exactly representable (2841 / 2^12); clippy can't tell.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
// Cephes expf polynomial for e^r on r ∈ [−ln2/2, ln2/2].
const EXP_P0: f32 = 1.987_569_1e-4;
const EXP_P1: f32 = 1.398_199_9e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_5e-1;
const EXP_P5: f32 = 5.000_000_4e-1;

/// Lane-wise `e^x` (range-reduced polynomial, ≤ 8 ULP of `f32::exp` on
/// the clamped domain).
///
/// # Safety
/// `S`'s instruction set must be available on the executing CPU.
#[inline(always)]
pub unsafe fn exp<S: SimdF32>(x: S) -> S {
    let x = x.min(S::splat(EXP_HI)).max(S::splat(EXP_LO));
    // n = round(x / ln 2);  r = x − n·ln 2  (two-part, exact)
    let n = x.mul(S::splat(LOG2E)).round();
    let r = n.mul_add(S::splat(-LN2_HI), x);
    let r = n.mul_add(S::splat(-LN2_LO), r);
    // e^r ≈ 1 + r + r²·P(r)
    let mut p = S::splat(EXP_P0);
    p = p.mul_add(r, S::splat(EXP_P1));
    p = p.mul_add(r, S::splat(EXP_P2));
    p = p.mul_add(r, S::splat(EXP_P3));
    p = p.mul_add(r, S::splat(EXP_P4));
    p = p.mul_add(r, S::splat(EXP_P5));
    let r2 = r.mul(r);
    let y = p.mul_add(r2, r).add(S::splat(1.0));
    // e^x = e^r · 2^n
    y.mul(n.pow2i())
}

/// Lane-wise logistic sigmoid `1 / (1 + e^(−x))` (≤ 16 ULP of the scalar
/// `1.0 / (1.0 + (−x).exp())` for finite inputs; saturates below
/// `x ≈ −88`).
///
/// # Safety
/// `S`'s instruction set must be available on the executing CPU.
#[inline(always)]
pub unsafe fn sigmoid<S: SimdF32>(x: S) -> S {
    let e = exp(S::zero().sub(x));
    S::splat(1.0).add(e).recip()
}
