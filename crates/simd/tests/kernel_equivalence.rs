//! Every dispatched kernel against its scalar reference, at **every**
//! dispatch level reachable on this host (`available_levels()`; cap with
//! `QN_SIMD=scalar|sse2` to exercise the lower tiers on wide machines).
//!
//! The contract under test is the per-kernel table in `qn_simd::kernels`:
//!
//! - lane-wise arithmetic (`add/sub/mul/scale/add_scalar/square/relu`,
//!   `affine_channel_to`) is **bit-exact** at every level — the vector ops
//!   are plain IEEE add/sub/mul/max with no fusing or reassociation;
//! - `exp_to` ≤ 8 ULP, `sigmoid_to` ≤ 16 ULP, softmax ≤ 32 ULP per
//!   probability (polynomial `exp`, documented in `qn_simd::math`);
//! - reductions (`dot`, `reduce_sum`, layer-norm moments, the `k ≥ LANES`
//!   quadratic-neuron rows) reassociate and get a relative tolerance,
//!   while the `k < LANES` quadratic-neuron branch is bit-exact by
//!   construction (reference-order segment sums);
//! - `reduce_max` is order-insensitive on finite data and must match
//!   exactly.
//!
//! `force_level` is process-global, so every test case serializes on one
//! mutex (the `cargo test` harness runs tests on threads).

use proptest::prelude::*;
use std::sync::Mutex;

static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per reachable dispatch level with that level forced,
/// restoring the previous level afterwards. Holds the global lock for the
/// whole sweep so concurrent tests never observe a foreign forced level.
fn for_each_level(
    mut f: impl FnMut(qn_simd::SimdLevel) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let prev = qn_simd::SimdLevel::active();
    let mut result = Ok(());
    for level in qn_simd::available_levels() {
        qn_simd::force_level(level);
        result = f(level);
        if result.is_err() {
            break;
        }
    }
    qn_simd::force_level(prev);
    result
}

/// ULP distance between two finite same-sign-or-zero floats.
fn ulp_diff(a: f32, b: f32) -> u32 {
    // map the bit pattern onto a monotone integer line (sign-magnitude to
    // offset binary) so adjacent floats differ by 1 across the zero
    let key = |x: f32| {
        let i = x.to_bits() as i32;
        if i < 0 {
            i32::MIN.wrapping_sub(i) as u32
        } else {
            (i as u32).wrapping_add(0x8000_0000)
        }
    };
    key(a).abs_diff(key(b))
}

fn vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lane-wise arithmetic is bit-exact at every level: the vector kernels
    /// perform the identical IEEE operation per lane.
    #[test]
    fn arithmetic_kernels_are_bit_exact(
        a in vals(67), b in vals(67), s in -4.0f32..4.0
    ) {
        let n = a.len();
        for_each_level(|level| {
            let mut dst = vec![0.0f32; n];
            qn_simd::add_to(&mut dst, &a, &b);
            for (i, d) in dst.iter().enumerate() {
                prop_assert!(d.to_bits() == (a[i] + b[i]).to_bits(), "add @ {level:?}");
            }
            qn_simd::sub_to(&mut dst, &a, &b);
            for (i, d) in dst.iter().enumerate() {
                prop_assert!(d.to_bits() == (a[i] - b[i]).to_bits(), "sub @ {level:?}");
            }
            qn_simd::mul_to(&mut dst, &a, &b);
            for (i, d) in dst.iter().enumerate() {
                prop_assert!(d.to_bits() == (a[i] * b[i]).to_bits(), "mul @ {level:?}");
            }
            qn_simd::scale_to(&mut dst, &a, s);
            for (i, d) in dst.iter().enumerate() {
                prop_assert!(d.to_bits() == (a[i] * s).to_bits(), "scale @ {level:?}");
            }
            let mut buf = a.clone();
            qn_simd::scale_inplace(&mut buf, s);
            for (i, d) in buf.iter().enumerate() {
                prop_assert!(d.to_bits() == (a[i] * s).to_bits(), "scale_inplace @ {level:?}");
            }
            qn_simd::add_scalar_to(&mut dst, &a, s);
            for (i, d) in dst.iter().enumerate() {
                prop_assert!(d.to_bits() == (a[i] + s).to_bits(), "add_scalar @ {level:?}");
            }
            qn_simd::square_to(&mut dst, &a);
            for (i, d) in dst.iter().enumerate() {
                prop_assert!(d.to_bits() == (a[i] * a[i]).to_bits(), "square @ {level:?}");
            }
            qn_simd::relu_to(&mut dst, &a);
            for (i, d) in dst.iter().enumerate() {
                prop_assert!(d.to_bits() == a[i].max(0.0).to_bits(), "relu @ {level:?}");
            }
            Ok(())
        })?;
    }

    /// The per-channel affine `(x − μ)·σ⁻¹·γ + β` applies the same
    /// operation order lane-wise → bit-exact at every level.
    #[test]
    fn affine_channel_is_bit_exact(
        src in vals(61), mean in -2.0f32..2.0, inv in 0.1f32..4.0,
        gamma in -2.0f32..2.0, beta in -2.0f32..2.0
    ) {
        let n = src.len();
        for_each_level(|level| {
            let mut dst = vec![0.0f32; n];
            qn_simd::affine_channel_to(&mut dst, &src, mean, inv, gamma, beta);
            for (i, d) in dst.iter().enumerate() {
                let r = (src[i] - mean) * inv * gamma + beta;
                prop_assert!(d.to_bits() == r.to_bits(), "affine @ {level:?}: {d} vs {r}");
            }
            Ok(())
        })?;
    }

    /// `exp_to` stays within its documented 8 ULP of `f32::exp` over the
    /// non-clamped domain, at every level (scalar tails use the same
    /// polynomial, so the bound is uniform across the slice).
    #[test]
    fn exp_within_8_ulp(a in prop::collection::vec(-60.0f32..60.0, 53)) {
        let n = a.len();
        for_each_level(|level| {
            let mut dst = vec![0.0f32; n];
            qn_simd::exp_to(&mut dst, &a);
            for (i, d) in dst.iter().enumerate() {
                let r = a[i].exp();
                prop_assert!(
                    ulp_diff(*d, r) <= 8,
                    "exp({}) @ {level:?}: {d} vs {r} ({} ULP)", a[i], ulp_diff(*d, r)
                );
            }
            Ok(())
        })?;
    }

    /// `sigmoid_to` stays within its documented 16 ULP of
    /// `1/(1 + exp(−x))` at every level.
    #[test]
    fn sigmoid_within_16_ulp(a in prop::collection::vec(-25.0f32..25.0, 53)) {
        let n = a.len();
        for_each_level(|level| {
            let mut dst = vec![0.0f32; n];
            qn_simd::sigmoid_to(&mut dst, &a);
            for (i, d) in dst.iter().enumerate() {
                let r = 1.0 / (1.0 + (-a[i]).exp());
                prop_assert!(
                    ulp_diff(*d, r) <= 16,
                    "sigmoid({}) @ {level:?}: {d} vs {r} ({} ULP)", a[i], ulp_diff(*d, r)
                );
            }
            Ok(())
        })?;
    }

    /// Reductions: `reduce_max` is exact on finite data; `reduce_sum` and
    /// `dot` reassociate and must stay within a tolerance scaled by the
    /// magnitude sum.
    #[test]
    fn reductions_match_sequential_folds(a in vals(131), b in vals(131)) {
        let ref_sum: f32 = a.iter().sum();
        let ref_max = a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let ref_dot: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let mag_sum: f32 = a.iter().map(|x| x.abs()).sum();
        let mag_dot: f32 = a.iter().zip(&b).map(|(&x, &y)| (x * y).abs()).sum();
        for_each_level(|level| {
            prop_assert!(qn_simd::reduce_max(&a) == ref_max, "max @ {level:?}");
            let s = qn_simd::reduce_sum(&a);
            prop_assert!(
                (s - ref_sum).abs() <= 1e-6 * (1.0 + mag_sum),
                "sum @ {level:?}: {s} vs {ref_sum}"
            );
            let d = qn_simd::dot(&a, &b);
            prop_assert!(
                (d - ref_dot).abs() <= 1e-6 * (1.0 + mag_dot),
                "dot @ {level:?}: {d} vs {ref_dot}"
            );
            Ok(())
        })?;
    }

    /// Softmax rows stay within 32 ULP per probability of the stable scalar
    /// sweep, sum to ~1, and hold the bound at every level.
    #[test]
    fn softmax_row_within_32_ulp(
        full in prop::collection::vec(-12.0f32..12.0, 80), len in 1usize..80
    ) {
        let row = full[..len].to_vec();
        let mut reference = row.clone();
        let m = reference.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in reference.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in reference.iter_mut() {
            *v /= sum;
        }
        for_each_level(|level| {
            let mut r = row.clone();
            qn_simd::softmax_row_inplace(&mut r);
            let total: f32 = r.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-5, "sum @ {level:?}: {total}");
            for (i, p) in r.iter().enumerate() {
                prop_assert!(
                    ulp_diff(*p, reference[i]) <= 32,
                    "softmax[{i}] @ {level:?}: {p} vs {} ({} ULP)",
                    reference[i], ulp_diff(*p, reference[i])
                );
            }
            Ok(())
        })?;
    }

    /// Layer-norm rows: reassociated moments ⇒ tolerance-bounded against
    /// the sequential sweep.
    #[test]
    fn layer_norm_row_within_tolerance(
        src in vals(77), gamma in vals(77), beta in vals(77)
    ) {
        let n = src.len();
        let eps = 1e-5f32;
        let mean = src.iter().sum::<f32>() / n as f32;
        let var = src.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let istd = 1.0 / (var + eps).sqrt();
        for_each_level(|level| {
            let mut dst = vec![0.0f32; n];
            qn_simd::layer_norm_row(&mut dst, &src, &gamma, &beta, eps);
            for (i, d) in dst.iter().enumerate() {
                let r = (src[i] - mean) * istd * gamma[i] + beta[i];
                prop_assert!(
                    (d - r).abs() <= 1e-5 * (1.0 + r.abs()),
                    "layer_norm[{i}] @ {level:?}: {d} vs {r}"
                );
            }
            Ok(())
        })?;
    }

    /// Quadratic-neuron rows. `k < LANES` takes the bit-exact branch
    /// (elementwise pass + reference-order segment sums); `k ≥ LANES`
    /// reassociates per neuron and gets the tolerance.
    #[test]
    fn weighted_square_row_matches_reference(
        f in vals(24 * 24), lam in prop::collection::vec(0.0f32..2.0, 24 * 24),
        m in 1usize..24, k in 1usize..24
    ) {
        let f = &f[..m * k];
        let lam = &lam[..m * k];
        let mut reference = vec![0.0f32; m];
        for (j, o) in reference.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for i in 0..k {
                let x = f[j * k + i];
                acc += x * x * lam[j * k + i];
            }
            *o = acc;
        }
        for_each_level(|level| {
            let mut out = vec![0.0f32; m];
            qn_simd::weighted_square_row(&mut out, f, lam, k);
            let exact = k < level.lanes();
            for (j, o) in out.iter().enumerate() {
                if exact {
                    prop_assert!(
                        o.to_bits() == reference[j].to_bits(),
                        "wsq[{j}] (k={k} < lanes) @ {level:?}: {o} vs {}", reference[j]
                    );
                } else {
                    prop_assert!(
                        (o - reference[j]).abs() <= 1e-5 * (1.0 + reference[j].abs()),
                        "wsq[{j}] (k={k}) @ {level:?}: {o} vs {}", reference[j]
                    );
                }
            }
            Ok(())
        })?;
    }
}

/// Forced levels clamp to the detected ceiling and always restore — the
/// invariant the whole suite leans on.
#[test]
fn force_level_round_trips() {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let before = qn_simd::SimdLevel::active();
    for level in qn_simd::available_levels() {
        let prev = qn_simd::force_level(level);
        assert!(qn_simd::SimdLevel::active() <= qn_simd::SimdLevel::detected());
        assert_eq!(
            qn_simd::SimdLevel::active(),
            level.min(qn_simd::SimdLevel::detected())
        );
        qn_simd::force_level(prev);
    }
    assert_eq!(qn_simd::SimdLevel::active(), before);
}
