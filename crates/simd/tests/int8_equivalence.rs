//! The int8 lane kernels and the optimizer-update kernels against their
//! scalar references, at **every** dispatch level reachable on this host.
//!
//! Unlike the f32 kernels (where reductions reassociate and only get ULP
//! bounds), everything in this file is **bit-exact** at every level:
//!
//! - `dot_i8` accumulates in i32, and integer addition is associative —
//!   any summation order gives the same bits;
//! - `quantize_to_i8` uses the magic-number round (identical IEEE op
//!   sequence per lane at every level);
//! - `sgd_update`/`adam_update` are element-local with no FMA and
//!   correctly-rounded `divps`/`sqrtps`, so each lane reproduces the
//!   seed scalar loop exactly.
//!
//! `force_level` is process-global, so every test case serializes on one
//! mutex (the `cargo test` harness runs tests on threads).

use proptest::prelude::*;
use std::sync::Mutex;

static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per reachable dispatch level with that level forced,
/// restoring the previous level afterwards.
fn for_each_level(
    mut f: impl FnMut(qn_simd::SimdLevel) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let prev = qn_simd::SimdLevel::active();
    let mut result = Ok(());
    for level in qn_simd::available_levels() {
        qn_simd::force_level(level);
        result = f(level);
        if result.is_err() {
            break;
        }
    }
    qn_simd::force_level(prev);
    result
}

/// Reference int8 dot in i64 (can never wrap, so it also cross-checks the
/// kernel's documented i32 non-overflow bound at test sizes).
fn dot_i8_ref(a: &[i8], b: &[i8]) -> i64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as i64 * y as i64)
        .sum::<i64>()
}

/// Reference quantizer: the same magic-number round-to-nearest-even the
/// kernel documents, written as the plain scalar expression.
fn quantize_ref(src: &[f32], inv_scale: f32) -> Vec<i8> {
    const ROUND_MAGIC: f32 = 12_582_912.0;
    src.iter()
        .map(|&x| ((x * inv_scale + ROUND_MAGIC) - ROUND_MAGIC).clamp(-127.0, 127.0) as i8)
        .collect()
}

fn codes(n: usize) -> impl Strategy<Value = Vec<i8>> {
    // Full symmetric code range; the kernels never produce −128 but must
    // handle it as an input.
    prop::collection::vec(-128i8..127, n)
}

fn vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `dot_i8` is bit-identical to the widened reference at every level
    /// and every length (covers the 32/16/scalar tail boundaries).
    #[test]
    fn dot_i8_matches_reference_at_every_level(
        n in 0usize..200,
        seed_a in codes(200), seed_b in codes(200)
    ) {
        let a = &seed_a[..n];
        let b = &seed_b[..n];
        let expect = dot_i8_ref(a, b);
        for_each_level(|level| {
            let got = qn_simd::dot_i8(a, b) as i64;
            prop_assert_eq!(got, expect, "dot_i8 @ {:?}", level);
            Ok(())
        })?;
    }

    /// `quantize_to_i8` produces identical codes at every level, matching
    /// the scalar magic-number reference (ties-to-even, clamped to ±127).
    #[test]
    fn quantize_to_i8_is_bit_exact_at_every_level(
        src in vals(133), inv_scale in 0.0f32..64.0
    ) {
        let expect = quantize_ref(&src, inv_scale);
        for_each_level(|level| {
            let mut dst = vec![0i8; src.len()];
            qn_simd::quantize_to_i8(&mut dst, &src, inv_scale);
            prop_assert_eq!(&dst, &expect, "quantize @ {:?}", level);
            Ok(())
        })?;
    }

    /// `sgd_update` reproduces the seed scalar momentum loop bit-for-bit
    /// at every level.
    #[test]
    fn sgd_update_is_bit_exact_at_every_level(
        value0 in vals(67), vel0 in vals(67), grad in vals(67),
        lr in 0.001f32..0.5, momentum in 0.0f32..0.99, wd in 0.0f32..0.1
    ) {
        let n = value0.len();
        // Seed scalar reference (the Exact-profile loop in qn-nn).
        let mut value_ref = value0.clone();
        let mut vel_ref = vel0.clone();
        for i in 0..n {
            let g = grad[i] + wd * value_ref[i];
            let v = momentum * vel_ref[i] + g;
            vel_ref[i] = v;
            value_ref[i] -= lr * v;
        }
        for_each_level(|level| {
            let mut value = value0.clone();
            let mut vel = vel0.clone();
            qn_simd::sgd_update(&mut value, &mut vel, &grad, lr, momentum, wd);
            for i in 0..n {
                prop_assert!(value[i].to_bits() == value_ref[i].to_bits(),
                    "sgd value[{}] @ {:?}", i, level);
                prop_assert!(vel[i].to_bits() == vel_ref[i].to_bits(),
                    "sgd vel[{}] @ {:?}", i, level);
            }
            Ok(())
        })?;
    }

    /// `adam_update` reproduces the seed scalar Adam loop bit-for-bit at
    /// every level (correctly-rounded div/sqrt, no FMA).
    #[test]
    fn adam_update_is_bit_exact_at_every_level(
        value0 in vals(67), m0 in vals(67), v0a in vals(67), grad in vals(67),
        lr in 0.0001f32..0.01, t in 1u32..200
    ) {
        let n = value0.len();
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        // Second moments must be non-negative, as in a real run.
        let v0: Vec<f32> = v0a.iter().map(|x| x.abs()).collect();
        let mut value_ref = value0.clone();
        let mut m_ref = m0.clone();
        let mut v_ref = v0.clone();
        for i in 0..n {
            let g = grad[i];
            let mi = b1 * m_ref[i] + (1.0 - b1) * g;
            let vi = b2 * v_ref[i] + (1.0 - b2) * g * g;
            m_ref[i] = mi;
            v_ref[i] = vi;
            let mhat = mi / bias1;
            let vhat = vi / bias2;
            value_ref[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
        for_each_level(|level| {
            let mut value = value0.clone();
            let mut m = m0.clone();
            let mut v = v0.clone();
            qn_simd::adam_update(&mut value, &mut m, &mut v, &grad, lr, b1, b2, eps, bias1, bias2);
            for i in 0..n {
                prop_assert!(value[i].to_bits() == value_ref[i].to_bits(),
                    "adam value[{}] @ {:?}", i, level);
                prop_assert!(m[i].to_bits() == m_ref[i].to_bits(),
                    "adam m[{}] @ {:?}", i, level);
                prop_assert!(v[i].to_bits() == v_ref[i].to_bits(),
                    "adam v[{}] @ {:?}", i, level);
            }
            Ok(())
        })?;
    }
}

/// The int8 kernels ignore the kernel profile: they are exact in both,
/// so Exact mode is allowed to use them (documented in `qn_simd::int8`).
#[test]
fn int8_kernels_identical_across_profiles() {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let a: Vec<i8> = (0..97).map(|i| ((i * 37 + 11) % 255 - 127) as i8).collect();
    let b: Vec<i8> = (0..97).map(|i| ((i * 53 + 7) % 255 - 127) as i8).collect();
    let prev = qn_simd::force_profile(qn_simd::KernelProfile::Exact);
    let exact = qn_simd::dot_i8(&a, &b);
    qn_simd::force_profile(qn_simd::KernelProfile::Fast);
    let fast = qn_simd::dot_i8(&a, &b);
    qn_simd::force_profile(prev);
    assert_eq!(exact, fast);
}
