use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// Collects experiment output as markdown, mirrors it to stdout, and writes
/// it under `results/`.
///
/// # Example
///
/// ```
/// use qn_experiments::Report;
///
/// let mut r = Report::new("demo", "Demo experiment");
/// r.line("some finding");
/// r.table(&["col a", "col b"], &[vec!["1".into(), "2".into()]]);
/// assert!(r.markdown().contains("| col a | col b |"));
/// ```
#[derive(Debug)]
pub struct Report {
    id: String,
    body: String,
}

impl Report {
    /// Starts a report with a title header.
    pub fn new(id: &str, title: &str) -> Self {
        let mut body = String::new();
        let _ = writeln!(body, "# {title}\n");
        Report {
            id: id.to_string(),
            body,
        }
    }

    /// Appends a paragraph line.
    pub fn line(&mut self, text: &str) {
        println!("{text}");
        let _ = writeln!(self.body, "{text}");
    }

    /// Appends a markdown table.
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        print!("{out}");
        self.body.push_str(&out);
        self.body.push('\n');
    }

    /// The accumulated markdown.
    pub fn markdown(&self) -> &str {
        &self.body
    }

    /// Writes the report to `results/<id>.md` relative to the workspace
    /// root (or the current directory as fallback).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save(&self) -> io::Result<PathBuf> {
        let mut dir = PathBuf::from("results");
        if !dir.exists() {
            // fall back to the workspace root when invoked from a crate dir
            let alt = PathBuf::from("../../results");
            if alt.exists() {
                dir = alt;
            } else {
                std::fs::create_dir_all(&dir)?;
            }
        }
        let path = dir.join(format!("{}.md", self.id));
        std::fs::write(&path, &self.body)?;
        Ok(path)
    }

    /// [`Report::save`], but on failure prints the error to stderr and
    /// exits the process with status 1 — the shared final step of every
    /// experiment binary, none of which can do anything useful after a
    /// failed report write. Never panics.
    pub fn save_or_exit(&self) -> PathBuf {
        self.save().unwrap_or_else(|e| {
            eprintln!("{}: cannot write report: {e}", self.id);
            std::process::exit(1);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut r = Report::new("t", "T");
        r.table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(r.markdown().contains("| a | b |"));
        assert!(r.markdown().contains("| 3 | 4 |"));
        assert!(r.markdown().contains("|---|---|"));
    }

    #[test]
    fn lines_accumulate() {
        let mut r = Report::new("t", "T");
        r.line("hello");
        r.line("world");
        assert!(r.markdown().contains("hello\nworld"));
    }
}
