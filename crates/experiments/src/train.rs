use qn_autograd::Graph;
use qn_data::{augment_batch, DataLoader, ImageDataset, TranslationDataset};
use qn_metrics::accuracy;
use qn_models::{InferenceSession, ResNet, Transformer};
use qn_nn::{
    checkpoint as nn_checkpoint, clip_grad_norm, Adam, AdamConfig, LoadMode, Module, NoamSchedule,
    Sgd, SgdConfig, StepDecay,
};
use qn_tensor::{BufferPool, Checkpoint, CheckpointWriter, Rng, Tensor, TensorError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Periodic checkpointing and resume policy for the training loops.
///
/// With everything default, training neither saves nor resumes. When
/// `path`/`every_batches` are set, the full run state — model parameters,
/// batch-norm statistics, optimizer buffers, RNG stream positions and the
/// partial loss curve — is written atomically every `every_batches`
/// optimizer steps, and a run restarted with `resume` pointing at such a
/// file reproduces the uninterrupted run's loss curve **bit for bit**.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointSpec {
    /// Where periodic checkpoints go; `None` disables saving.
    pub path: Option<PathBuf>,
    /// Save every N optimizer steps; `0` disables saving.
    pub every_batches: usize,
    /// Checkpoint to restore before training; `None` starts fresh.
    pub resume: Option<PathBuf>,
    /// Stop after N optimizer steps, counted across epochs and **including
    /// steps replayed before a resume point** (test hook for simulating an
    /// interrupted run; `None` trains to completion).
    pub halt_after_batches: Option<usize>,
}

impl CheckpointSpec {
    /// Builds a spec from command-line style arguments, recognising
    /// `--checkpoint <path>` (periodic save target), `--every <n>` (save
    /// interval in optimizer steps, default 50 when a checkpoint path is
    /// given) and `--resume <path>`. Unrecognised arguments are returned
    /// untouched so callers can layer their own flags.
    ///
    /// # Errors
    ///
    /// Returns a usage message when a flag is missing its value or `--every`
    /// is not a positive integer.
    pub fn parse_args<I>(args: I) -> Result<(CheckpointSpec, Vec<String>), String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut spec = CheckpointSpec::default();
        let mut every: Option<usize> = None;
        let mut rest = Vec::new();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--checkpoint" => spec.path = Some(PathBuf::from(value("--checkpoint")?)),
                "--resume" => spec.resume = Some(PathBuf::from(value("--resume")?)),
                "--every" => {
                    every = Some(
                        value("--every")?
                            .parse()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or("--every requires a positive integer")?,
                    );
                }
                _ => rest.push(arg),
            }
        }
        if spec.path.is_some() {
            spec.every_batches = every.unwrap_or(50);
        } else if every.is_some() {
            return Err("--every is only meaningful with --checkpoint <path>".into());
        }
        Ok((spec, rest))
    }

    fn should_save(&self, global_batches: usize) -> Option<&Path> {
        match (&self.path, self.every_batches) {
            (Some(p), every) if every > 0 && global_batches.is_multiple_of(every) => {
                Some(p.as_path())
            }
            _ => None,
        }
    }

    fn should_halt(&self, global_batches: usize) -> bool {
        self.halt_after_batches
            .is_some_and(|halt| global_batches >= halt)
    }
}

fn meta_err(detail: String) -> TensorError {
    TensorError::InvalidCheckpoint { offset: 0, detail }
}

fn require_meta<'c>(ckpt: &'c Checkpoint, key: &str) -> Result<&'c str, TensorError> {
    ckpt.meta(key)
        .ok_or_else(|| meta_err(format!("resume checkpoint is missing meta key \"{key}\"")))
}

fn parse_usize(ckpt: &Checkpoint, key: &str) -> Result<usize, TensorError> {
    require_meta(ckpt, key)?
        .parse()
        .map_err(|_| meta_err(format!("meta key \"{key}\" is not an integer")))
}

fn parse_u64(ckpt: &Checkpoint, key: &str) -> Result<u64, TensorError> {
    require_meta(ckpt, key)?
        .parse()
        .map_err(|_| meta_err(format!("meta key \"{key}\" is not an integer")))
}

/// f32s cross the meta section as bit patterns so accumulators restore
/// exactly (decimal round-trips would break bit-for-bit resume).
fn f32_hex(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

fn parse_f32_bits(ckpt: &Checkpoint, key: &str) -> Result<f32, TensorError> {
    let hex = require_meta(ckpt, key)?;
    u32::from_str_radix(hex, 16)
        .map(f32::from_bits)
        .map_err(|_| meta_err(format!("meta key \"{key}\" is not an f32 bit pattern")))
}

fn rng_hex(state: [u64; 4]) -> String {
    state.iter().map(|w| format!("{w:016x}")).collect()
}

fn parse_rng(ckpt: &Checkpoint, key: &str) -> Result<[u64; 4], TensorError> {
    let hex = require_meta(ckpt, key)?;
    if hex.len() != 64 {
        return Err(meta_err(format!(
            "meta key \"{key}\" is not a 4-word RNG state"
        )));
    }
    let mut state = [0u64; 4];
    for (i, slot) in state.iter_mut().enumerate() {
        *slot = u64::from_str_radix(&hex[i * 16..(i + 1) * 16], 16)
            .map_err(|_| meta_err(format!("meta key \"{key}\" is not hex")))?;
    }
    Ok(state)
}

fn curve_hex(curve: &[EpochStats]) -> String {
    curve
        .iter()
        .map(|e| format!("{}:{}", f32_hex(e.loss), f32_hex(e.accuracy)))
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_curve(ckpt: &Checkpoint, key: &str) -> Result<Vec<EpochStats>, TensorError> {
    let text = require_meta(ckpt, key)?;
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(';')
        .map(|pair| {
            let (l, a) = pair
                .split_once(':')
                .ok_or_else(|| meta_err(format!("malformed curve entry \"{pair}\"")))?;
            let bits = |s: &str| {
                u32::from_str_radix(s, 16)
                    .map(f32::from_bits)
                    .map_err(|_| meta_err(format!("malformed curve entry \"{pair}\"")))
            };
            Ok(EpochStats {
                loss: bits(l)?,
                accuracy: bits(a)?,
            })
        })
        .collect()
}

fn parse_f32_list(ckpt: &Checkpoint, key: &str) -> Result<Vec<f32>, TensorError> {
    let text = require_meta(ckpt, key)?;
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(';')
        .map(|hex| {
            u32::from_str_radix(hex, 16)
                .map(f32::from_bits)
                .map_err(|_| meta_err(format!("malformed loss entry \"{hex}\"")))
        })
        .collect()
}

/// One epoch's training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss.
    pub loss: f32,
    /// Mean training accuracy.
    pub accuracy: f32,
}

/// Outcome of a classifier training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Per-epoch training statistics.
    pub curve: Vec<EpochStats>,
    /// Final test accuracy.
    pub test_accuracy: f32,
    /// `true` if the loss became non-finite (the Fig. 6 failure mode).
    pub diverged: bool,
}

/// The paper's CIFAR recipe scaled to CPU: SGD with momentum and weight
/// decay, step decay at 50%/75% of the epochs, pad-crop-flip augmentation,
/// and a dedicated low learning rate for the quadratic `Λᵏ` parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate (paper: 0.1).
    pub lr: f32,
    /// Learning rate for `Λᵏ` parameters (paper: 1e-4).
    pub lambda_lr: f32,
    /// Momentum (paper: 0.9).
    pub momentum: f32,
    /// Weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Apply pad-crop-flip augmentation.
    pub augment: bool,
    /// Global gradient-norm clip; `None` disables (the paper's recipe has no
    /// clipping — the Fig. 6 instability study needs it off).
    pub clip: Option<f32>,
    /// Shuffle / dropout seed.
    pub seed: u64,
    /// Data-parallel gradient-accumulation shards per step: each mini-batch
    /// is split into this many contiguous sub-batches whose forward/backward
    /// passes run concurrently on the `qn-parallel` pool, and whose
    /// gradients are then accumulated **in shard order**, so for a given
    /// shard count the loss curve and every gradient are bit-deterministic
    /// at any thread count. `0` means "one shard per pool thread"; `1` (the
    /// default) reproduces the single-graph step bit-for-bit.
    ///
    /// Shard counts > 1 follow standard unsynchronized data-parallel
    /// semantics: batch norm normalizes with **per-shard** batch statistics
    /// (there is no cross-shard stat sync), so the optimization trajectory
    /// differs slightly from the single-graph baseline, and the
    /// running-statistics updates — which only feed later inference, never
    /// the training gradients — are folded in pool-completion order.
    pub grad_shards: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 0.05,
            lambda_lr: 1e-4,
            momentum: 0.9,
            weight_decay: 1e-4,
            augment: true,
            clip: Some(5.0),
            seed: 0,
            grad_shards: 1,
        }
    }
}

/// One shard's contribution to a data-parallel training step.
struct ShardStep {
    /// Shard loss, already weighted by `shard_len / batch_len`.
    weighted_loss: f32,
    /// Shard accuracy, weighted by `shard_len`.
    weighted_hits: f32,
    /// `(parameter, gradient)` pairs from [`qn_autograd::Graph::backward_collect`].
    grads: Vec<(qn_autograd::Parameter, Tensor)>,
}

/// Forward/backward over `batch[lo..hi]`, returning weighted loss, weighted
/// accuracy and the collected (not yet accumulated) gradients.
fn shard_step(
    net: &ResNet,
    images: &Tensor,
    labels: &[usize],
    lo: usize,
    hi: usize,
    seed: u64,
    pool: &Arc<BufferPool>,
) -> ShardStep {
    let batch_len = labels.len() as f32;
    let shard_len = (hi - lo) as f32;
    // Pooled tape: the backward sweep reclaims intermediate activations and
    // spent gradients into the step-shared pool, and `recycle_into` below
    // returns the rest, so the next step's graph (and the GEMM packing
    // scratch) reuses this step's buffers instead of reallocating.
    let mut g = Graph::training_pooled(seed, Arc::clone(pool));
    let x = g.leaf(images.slice_axis(0, lo, hi));
    let logits = net.forward(&mut g, x);
    let shard_labels = &labels[lo..hi];
    // accuracy is read *before* backward: the pooled sweep reclaims the
    // logits buffer
    let shard_acc = accuracy(g.value(logits), shard_labels);
    let loss = g.softmax_cross_entropy(logits, shard_labels, 0.0);
    // Weight the shard's mean loss by its share of the batch so the summed
    // gradient equals the full-batch mean-loss gradient.
    let weighted = g.scale(loss, shard_len / batch_len);
    let weighted_loss = g.value(weighted).data()[0];
    if !weighted_loss.is_finite() {
        return ShardStep {
            weighted_loss,
            weighted_hits: 0.0,
            grads: Vec::new(),
        };
    }
    let grads = g.backward_collect(weighted);
    g.recycle_into(pool);
    ShardStep {
        weighted_loss,
        weighted_hits: shard_acc * shard_len,
        grads,
    }
}

/// Trains a ResNet classifier on an image dataset, returning the loss/acc
/// curve, final test accuracy and a divergence flag.
///
/// Convenience wrapper over [`try_train_classifier`] with checkpointing
/// disabled.
///
/// # Panics
///
/// Never panics from checkpoint handling (none is configured); the usual
/// shape contracts of the model and dataset apply.
pub fn train_classifier(net: &ResNet, data: &ImageDataset, cfg: TrainConfig) -> TrainResult {
    try_train_classifier(net, data, cfg, &CheckpointSpec::default())
        .expect("checkpointing disabled: no I/O to fail")
}

/// Writes the classifier run state (model + optimizer + loop counters) to
/// `path` atomically.
#[allow(clippy::too_many_arguments)]
fn save_classifier_checkpoint(
    net: &ResNet,
    opt: &Sgd,
    path: &Path,
    epoch: usize,
    batch_in_epoch: usize,
    global_batches: usize,
    step_seed: u64,
    rng: &Rng,
    epoch_start: [u64; 4],
    curve: &[EpochStats],
    loss_sum: f32,
    acc_sum: f32,
) -> Result<(), TensorError> {
    let mut w = CheckpointWriter::new();
    w.add_meta("kind", "classifier");
    w.add_meta("epoch", epoch.to_string());
    w.add_meta("batch_in_epoch", batch_in_epoch.to_string());
    w.add_meta("global_batches", global_batches.to_string());
    w.add_meta("step_seed", step_seed.to_string());
    w.add_meta("rng", rng_hex(rng.state()));
    w.add_meta("rng_epoch_start", rng_hex(epoch_start));
    w.add_meta("curve", curve_hex(curve));
    w.add_meta("loss_sum", f32_hex(loss_sum));
    w.add_meta("acc_sum", f32_hex(acc_sum));
    nn_checkpoint::append_visited(&mut w, "model", |v| net.visit_params(v));
    opt.save_state(&mut w, "opt");
    w.write_to(path)
}

/// Mid-run loop state restored from a classifier checkpoint.
struct ClassifierResume {
    epoch: usize,
    batch_in_epoch: usize,
    global_batches: usize,
    step_seed: u64,
    rng: Rng,
    epoch_start: [u64; 4],
    curve: Vec<EpochStats>,
    loss_sum: f32,
    acc_sum: f32,
}

fn load_classifier_checkpoint(
    net: &ResNet,
    opt: &mut Sgd,
    path: &Path,
) -> Result<ClassifierResume, TensorError> {
    let ckpt = Checkpoint::open(path)?;
    match ckpt.meta("kind") {
        Some("classifier") => {}
        other => {
            return Err(meta_err(format!(
                "resume checkpoint kind {other:?} is not \"classifier\""
            )))
        }
    }
    nn_checkpoint::apply_checkpoint(&ckpt, "model", LoadMode::Copy, |v| net.visit_params(v))?;
    opt.load_state(&ckpt, "opt")?;
    Ok(ClassifierResume {
        epoch: parse_usize(&ckpt, "epoch")?,
        batch_in_epoch: parse_usize(&ckpt, "batch_in_epoch")?,
        global_batches: parse_usize(&ckpt, "global_batches")?,
        step_seed: parse_u64(&ckpt, "step_seed")?,
        rng: Rng::from_state(parse_rng(&ckpt, "rng")?),
        epoch_start: parse_rng(&ckpt, "rng_epoch_start")?,
        curve: parse_curve(&ckpt, "curve")?,
        loss_sum: parse_f32_bits(&ckpt, "loss_sum")?,
        acc_sum: parse_f32_bits(&ckpt, "acc_sum")?,
    })
}

/// [`train_classifier`] with periodic checkpointing and resume.
///
/// Resuming restores model parameters, batch-norm statistics, momentum
/// buffers, both RNG stream positions (current, and epoch-start for
/// replaying the epoch's shuffle order) and the loss-curve accumulators,
/// then skips the batches the interrupted run already trained on — so the
/// resumed run's curve is bit-identical to the uninterrupted one.
///
/// # Errors
///
/// Returns [`TensorError::InvalidCheckpoint`] /
/// [`TensorError::VersionMismatch`] when the resume file is unreadable,
/// malformed, from a different model/optimizer layout, or when a periodic
/// save fails. A failed save aborts training (the run state on disk stays
/// whole — saves are atomic).
pub fn try_train_classifier(
    net: &ResNet,
    data: &ImageDataset,
    cfg: TrainConfig,
    spec: &CheckpointSpec,
) -> Result<TrainResult, TensorError> {
    let (lambda, other) = net.param_groups();
    let mut opt = Sgd::new(SgdConfig {
        lr: cfg.lr,
        momentum: cfg.momentum,
        weight_decay: cfg.weight_decay,
    });
    opt.add_group(other, None, None);
    if !lambda.is_empty() {
        opt.add_group(lambda, Some(cfg.lambda_lr), Some(0.0));
    }
    let schedule = StepDecay::new(vec![cfg.epochs / 2, cfg.epochs * 3 / 4], 0.1);
    let resume = match &spec.resume {
        Some(path) => Some(load_classifier_checkpoint(net, &mut opt, path)?),
        None => None,
    };
    let loader = DataLoader::new(&data.train_images, &data.train_labels, cfg.batch_size);
    let mut diverged = false;
    let mut halted = false;

    let (mut rng, start_epoch, mut step_seed, mut global_batches, mut curve) = match &resume {
        Some(r) => (
            Rng::from_state(r.rng.state()),
            r.epoch,
            r.step_seed,
            r.global_batches,
            r.curve.clone(),
        ),
        None => (
            Rng::seed_from(cfg.seed),
            0,
            cfg.seed,
            0,
            Vec::with_capacity(cfg.epochs),
        ),
    };
    // Mid-epoch restore: the resumed epoch replays its shuffle from the
    // epoch-start RNG snapshot (the live `rng` is already past it), skips
    // the batches the interrupted run completed, and continues the
    // partial-epoch accumulators.
    let mut resume_epoch = resume
        .as_ref()
        .map(|r| (r.epoch_start, r.batch_in_epoch, r.loss_sum, r.acc_sum));

    let shards_cfg = if cfg.grad_shards == 0 {
        qn_parallel::num_threads()
    } else {
        cfg.grad_shards
    };
    // One pool for the whole run: step N+1's tapes draw from step N's
    // reclaimed buffers (values are unaffected — `pool_equivalence.rs`
    // asserts pooled and unpooled gradients are bit-identical).
    let pool = Arc::new(BufferPool::new());

    'epochs: for epoch in start_epoch..cfg.epochs {
        let factor = schedule.factor(epoch);
        let (epoch_start, order, skip, mut loss_sum, mut acc_sum) = match resume_epoch.take() {
            Some((start, done, loss_sum, acc_sum)) => {
                let mut replay = Rng::from_state(start);
                (
                    start,
                    loader.shuffle_order(&mut replay),
                    done,
                    loss_sum,
                    acc_sum,
                )
            }
            None => {
                let start = rng.state();
                (start, loader.shuffle_order(&mut rng), 0, 0.0f32, 0.0f32)
            }
        };
        let mut batches = skip;
        for (bi, (images, labels)) in loader.epoch_with_order(order).enumerate() {
            if bi < skip {
                continue;
            }
            let images = if cfg.augment {
                augment_batch(&images, 2, &mut rng)
            } else {
                images
            };
            step_seed = step_seed.wrapping_add(1);
            let batch_len = labels.len();
            let shards = shards_cfg.min(batch_len).max(1);
            let (loss_val, batch_acc) = if shards <= 1 {
                // Single-graph step: bit-for-bit the pre-sharding behaviour
                // (the pooled tape only changes where buffers come from).
                let mut g = Graph::training_pooled(step_seed, Arc::clone(&pool));
                let x = g.leaf(images);
                let logits = net.forward(&mut g, x);
                let loss = g.softmax_cross_entropy(logits, &labels, 0.0);
                let loss_val = g.value(loss).data()[0];
                // read before backward: the pooled sweep reclaims the logits
                let batch_acc = accuracy(g.value(logits), &labels);
                if loss_val.is_finite() {
                    g.backward(loss);
                }
                g.recycle_into(&pool);
                (loss_val, batch_acc)
            } else {
                // Data-parallel step: shard forward/backward passes run
                // concurrently, gradients accumulate in shard order below so
                // the reduction is deterministic at any thread count.
                let ranges = qn_parallel::split_evenly(batch_len, shards);
                let images_ref = &images;
                let labels_ref = labels.as_slice();
                let pool_ref = &pool;
                let steps = qn_parallel::par_map(ranges, |s, (lo, hi)| {
                    shard_step(
                        net,
                        images_ref,
                        labels_ref,
                        lo,
                        hi,
                        step_seed.wrapping_add(s as u64),
                        pool_ref,
                    )
                });
                let loss_val: f32 = steps.iter().map(|s| s.weighted_loss).sum();
                let hits: f32 = steps.iter().map(|s| s.weighted_hits).sum();
                if loss_val.is_finite() {
                    for step in &steps {
                        for (p, grad) in &step.grads {
                            p.accumulate_grad(grad);
                        }
                    }
                }
                (loss_val, hits / batch_len as f32)
            };
            if !loss_val.is_finite() {
                diverged = true;
                curve.push(EpochStats {
                    loss: f32::INFINITY,
                    accuracy: 0.0,
                });
                break 'epochs;
            }
            if let Some(max_norm) = cfg.clip {
                clip_grad_norm(&opt.params(), max_norm);
            }
            opt.step(factor);
            opt.zero_grad();
            loss_sum += loss_val;
            acc_sum += batch_acc;
            batches += 1;
            global_batches += 1;
            if let Some(path) = spec.should_save(global_batches) {
                save_classifier_checkpoint(
                    net,
                    &opt,
                    path,
                    epoch,
                    bi + 1,
                    global_batches,
                    step_seed,
                    &rng,
                    epoch_start,
                    &curve,
                    loss_sum,
                    acc_sum,
                )?;
            }
            if spec.should_halt(global_batches) {
                halted = true;
                break 'epochs;
            }
        }
        curve.push(EpochStats {
            loss: loss_sum / batches.max(1) as f32,
            accuracy: acc_sum / batches.max(1) as f32,
        });
    }
    // A halted run simulates an interrupted process: return the partial
    // curve without paying for an evaluation nobody will read.
    let test_accuracy = if diverged || halted {
        0.0
    } else {
        evaluate_classifier(net, &data.test_images, &data.test_labels, cfg.batch_size)
    };
    Ok(TrainResult {
        curve,
        test_accuracy,
        diverged,
    })
}

/// Inference-mode accuracy of a classifier over a labelled set.
///
/// Runs on the tape-free path: one [`InferenceSession`] is reused across
/// all batches, so evaluation measures inference cost rather than autograd
/// bookkeeping.
pub fn evaluate_classifier(
    net: &ResNet,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> f32 {
    evaluate_classifier_session(&mut InferenceSession::new(net), images, labels, batch_size)
}

/// [`evaluate_classifier`] over a caller-built session — this is how the
/// int8 tier is scored: build the session with
/// [`InferenceSession::quantized`] and compare against the f32 number
/// (`BENCH_quant.json` records the drift).
pub fn evaluate_classifier_session(
    session: &mut InferenceSession<'_>,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> f32 {
    let loader = DataLoader::new(images, labels, batch_size);
    let mut correct_weighted = 0.0f32;
    let mut total = 0usize;
    for (batch, labs) in loader.batches() {
        let logits = session.predict_batch(&batch);
        correct_weighted += accuracy(&logits, &labs) * labs.len() as f32;
        total += labs.len();
    }
    correct_weighted / total.max(1) as f32
}

/// Configuration for transformer training (Table II recipe at CPU scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformerTrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Sentence pairs per batch.
    pub batch_size: usize,
    /// Label smoothing (paper: 0.1).
    pub label_smoothing: f32,
    /// Noam warmup steps.
    pub warmup: usize,
    /// Learning rate for `Λᵏ` parameters.
    pub lambda_lr: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TransformerTrainConfig {
    fn default() -> Self {
        TransformerTrainConfig {
            epochs: 8,
            batch_size: 16,
            label_smoothing: 0.1,
            warmup: 60,
            lambda_lr: 1e-4,
            seed: 0,
        }
    }
}

/// Outcome of a transformer training run.
#[derive(Debug, Clone)]
pub struct TransformerTrainResult {
    /// Per-epoch mean training loss.
    pub losses: Vec<f32>,
    /// Greedy-decoded hypotheses for the test set (detokenized).
    pub hypotheses: Vec<String>,
    /// Detokenized test references.
    pub references: Vec<String>,
}

/// Trains a transformer on the synthetic corpus with Adam + Noam warmup and
/// greedy-decodes the test set.
///
/// Convenience wrapper over [`try_train_transformer`] with checkpointing
/// disabled.
///
/// # Panics
///
/// Never panics from checkpoint handling (none is configured); the usual
/// shape contracts of the model and dataset apply.
pub fn train_transformer(
    model: &Transformer,
    data: &TranslationDataset,
    cfg: TransformerTrainConfig,
) -> TransformerTrainResult {
    try_train_transformer(model, data, cfg, &CheckpointSpec::default())
        .expect("checkpointing disabled: no I/O to fail")
}

/// Writes the transformer run state (model + Adam + loop counters) to
/// `path` atomically.
#[allow(clippy::too_many_arguments)]
fn save_transformer_checkpoint(
    model: &Transformer,
    opt: &Adam,
    path: &Path,
    epoch: usize,
    batch_in_epoch: usize,
    step: usize,
    rng: &Rng,
    epoch_start: [u64; 4],
    losses: &[f32],
    loss_sum: f32,
) -> Result<(), TensorError> {
    let mut w = CheckpointWriter::new();
    w.add_meta("kind", "transformer");
    w.add_meta("epoch", epoch.to_string());
    w.add_meta("batch_in_epoch", batch_in_epoch.to_string());
    w.add_meta("step", step.to_string());
    w.add_meta("adam_t", opt.steps().to_string());
    w.add_meta("rng", rng_hex(rng.state()));
    w.add_meta("rng_epoch_start", rng_hex(epoch_start));
    w.add_meta(
        "losses",
        losses
            .iter()
            .map(|&l| f32_hex(l))
            .collect::<Vec<_>>()
            .join(";"),
    );
    w.add_meta("loss_sum", f32_hex(loss_sum));
    nn_checkpoint::append_visited(&mut w, "model", |v| model.visit_params(v));
    opt.save_state(&mut w, "opt");
    w.write_to(path)
}

/// Mid-run loop state restored from a transformer checkpoint.
struct TransformerResume {
    epoch: usize,
    batch_in_epoch: usize,
    step: usize,
    rng: Rng,
    epoch_start: [u64; 4],
    losses: Vec<f32>,
    loss_sum: f32,
}

fn load_transformer_checkpoint(
    model: &Transformer,
    opt: &mut Adam,
    path: &Path,
) -> Result<TransformerResume, TensorError> {
    let ckpt = Checkpoint::open(path)?;
    match ckpt.meta("kind") {
        Some("transformer") => {}
        other => {
            return Err(meta_err(format!(
                "resume checkpoint kind {other:?} is not \"transformer\""
            )))
        }
    }
    nn_checkpoint::apply_checkpoint(&ckpt, "model", LoadMode::Copy, |v| model.visit_params(v))?;
    opt.load_state(&ckpt, "opt")?;
    opt.set_steps(parse_u64(&ckpt, "adam_t")?);
    Ok(TransformerResume {
        epoch: parse_usize(&ckpt, "epoch")?,
        batch_in_epoch: parse_usize(&ckpt, "batch_in_epoch")?,
        step: parse_usize(&ckpt, "step")?,
        rng: Rng::from_state(parse_rng(&ckpt, "rng")?),
        epoch_start: parse_rng(&ckpt, "rng_epoch_start")?,
        losses: parse_f32_list(&ckpt, "losses")?,
        loss_sum: parse_f32_bits(&ckpt, "loss_sum")?,
    })
}

/// [`train_transformer`] with periodic checkpointing and resume; the same
/// bit-for-bit resume contract as [`try_train_classifier`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidCheckpoint`] /
/// [`TensorError::VersionMismatch`] when the resume file is unreadable,
/// malformed, from a different model/optimizer layout, or when a periodic
/// save fails.
pub fn try_train_transformer(
    model: &Transformer,
    data: &TranslationDataset,
    cfg: TransformerTrainConfig,
    spec: &CheckpointSpec,
) -> Result<TransformerTrainResult, TensorError> {
    let (lambda, other) = model.param_groups();
    let mut opt = Adam::new(AdamConfig::default());
    opt.add_group(other, None);
    if !lambda.is_empty() {
        opt.add_group(lambda, Some(cfg.lambda_lr));
    }
    let resume = match &spec.resume {
        Some(path) => Some(load_transformer_checkpoint(model, &mut opt, path)?),
        None => None,
    };
    let sched = NoamSchedule::new(model.config().d_model, cfg.warmup);
    let (mut rng, start_epoch, mut step, mut losses) = match &resume {
        Some(r) => (
            Rng::from_state(r.rng.state()),
            r.epoch,
            r.step,
            r.losses.clone(),
        ),
        None => (
            Rng::seed_from(cfg.seed),
            0,
            0,
            Vec::with_capacity(cfg.epochs),
        ),
    };
    let mut resume_epoch = resume
        .as_ref()
        .map(|r| (r.epoch_start, r.batch_in_epoch, r.loss_sum));
    let mut halted = false;
    let pool = Arc::new(BufferPool::new());
    'epochs: for epoch in start_epoch..cfg.epochs {
        let shuffled = |r: &mut Rng| {
            let mut order: Vec<usize> = (0..data.train.len()).collect();
            r.shuffle(&mut order);
            order
        };
        let (epoch_start, order, skip, mut loss_sum) = match resume_epoch.take() {
            Some((start, done, loss_sum)) => {
                let mut replay = Rng::from_state(start);
                (start, shuffled(&mut replay), done, loss_sum)
            }
            None => {
                let start = rng.state();
                (start, shuffled(&mut rng), 0, 0.0f32)
            }
        };
        let mut batches = skip;
        for (bi, chunk) in order.chunks(cfg.batch_size).enumerate() {
            if bi < skip {
                continue;
            }
            step += 1;
            let pairs: Vec<(&[usize], &[usize])> = chunk
                .iter()
                .map(|&i| {
                    let p = &data.train[i];
                    (p.source.as_slice(), p.target.as_slice())
                })
                .collect();
            let mut g =
                Graph::training_pooled(cfg.seed.wrapping_add(step as u64), Arc::clone(&pool));
            let loss = model.loss(&mut g, &pairs, cfg.label_smoothing);
            let lv = g.value(loss).data()[0];
            g.backward(loss);
            g.recycle_into(&pool);
            // Noam gives the absolute LR; Adam's base lr is folded out by
            // passing the schedule as a multiplier of lr=1e-3 default —
            // instead we normalize so the schedule IS the lr.
            let factor = sched.lr(step) / 1e-3;
            clip_grad_norm(&model.params(), 2.0);
            opt.step(factor);
            opt.zero_grad();
            loss_sum += lv;
            batches += 1;
            if let Some(path) = spec.should_save(step) {
                save_transformer_checkpoint(
                    model,
                    &opt,
                    path,
                    epoch,
                    bi + 1,
                    step,
                    &rng,
                    epoch_start,
                    &losses,
                    loss_sum,
                )?;
            }
            if spec.should_halt(step) {
                halted = true;
                break 'epochs;
            }
        }
        losses.push(loss_sum / batches.max(1) as f32);
    }
    let (hypotheses, references) = if halted {
        // simulated interruption: no decode pass
        (Vec::new(), Vec::new())
    } else {
        let max_len = data.max_len() + 4;
        let mut hypotheses = Vec::with_capacity(data.test.len());
        let mut references = Vec::with_capacity(data.test.len());
        for pair in &data.test {
            let out = model.greedy_decode(&pair.source, max_len);
            hypotheses.push(data.detokenize_target(&out));
            references.push(data.detokenize_target(&pair.target));
        }
        (hypotheses, references)
    };
    Ok(TransformerTrainResult {
        losses,
        hypotheses,
        references,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_core::NeuronSpec;
    use qn_data::{synthetic_cifar10, TranslationConfig};
    use qn_models::{NeuronPlacement, ResNetConfig, TransformerConfig};

    #[test]
    fn checkpoint_spec_parses_cli_flags() {
        let owned = |args: &[&str]| args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (spec, rest) = CheckpointSpec::parse_args(owned(&[
            "--full",
            "--checkpoint",
            "ck.qnckpt",
            "--every",
            "7",
            "--resume",
            "old.qnckpt",
        ]))
        .expect("valid flags");
        assert_eq!(spec.path.as_deref(), Some(Path::new("ck.qnckpt")));
        assert_eq!(spec.every_batches, 7);
        assert_eq!(spec.resume.as_deref(), Some(Path::new("old.qnckpt")));
        assert_eq!(rest, owned(&["--full"]));

        // default interval when --every is omitted
        let (spec, _) = CheckpointSpec::parse_args(owned(&["--checkpoint", "ck"])).unwrap();
        assert_eq!(spec.every_batches, 50);
        // no flags at all -> inert spec
        let (spec, _) = CheckpointSpec::parse_args(Vec::new()).unwrap();
        assert_eq!(spec, CheckpointSpec::default());
        // error cases must not panic
        assert!(CheckpointSpec::parse_args(owned(&["--checkpoint"])).is_err());
        assert!(CheckpointSpec::parse_args(owned(&["--every", "0"])).is_err());
        assert!(CheckpointSpec::parse_args(owned(&["--every", "3"])).is_err());
    }

    #[test]
    fn classifier_training_reduces_loss() {
        let data = synthetic_cifar10(8, 6, 3, 1);
        let net = ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
            placement: NeuronPlacement::All,
            seed: 2,
        });
        let result = train_classifier(
            &net,
            &data,
            TrainConfig {
                epochs: 2,
                batch_size: 16,
                augment: false,
                ..TrainConfig::default()
            },
        );
        assert!(!result.diverged);
        assert_eq!(result.curve.len(), 2);
        assert!(result.curve[1].loss < result.curve[0].loss + 0.1);
        assert!(result.test_accuracy >= 0.0 && result.test_accuracy <= 1.0);
    }

    #[test]
    fn data_parallel_training_is_deterministic_and_tracks_single_shard() {
        let data = synthetic_cifar10(8, 6, 3, 1);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            augment: false,
            ..TrainConfig::default()
        };
        let run = |shards: usize| {
            let net = ResNet::cifar(ResNetConfig {
                depth: 8,
                base_width: 4,
                num_classes: 10,
                neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
                placement: NeuronPlacement::All,
                seed: 2,
            });
            train_classifier(
                &net,
                &data,
                TrainConfig {
                    grad_shards: shards,
                    ..cfg
                },
            )
        };
        // For a given shard count the loss curve is bit-deterministic:
        // gradients accumulate in shard order, never in pool-completion
        // order, and training-mode batch norm never reads the (completion-
        // ordered) running statistics.
        let a = run(4);
        let b = run(4);
        assert!(!a.diverged && !b.diverged);
        assert_eq!(a.curve[0].loss.to_bits(), b.curve[0].loss.to_bits());
        // Sharded training uses per-shard batch-norm statistics
        // (unsynchronized data parallelism), so it tracks the single-graph
        // baseline closely but not exactly.
        let single = run(1);
        assert!(
            (a.curve[0].loss - single.curve[0].loss).abs() < 0.2,
            "sharded loss {} vs single-shard {}",
            a.curve[0].loss,
            single.curve[0].loss
        );
    }

    fn resume_net(seed: u64) -> ResNet {
        ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
            placement: NeuronPlacement::All,
            seed,
        })
    }

    #[test]
    fn classifier_resume_reproduces_uninterrupted_curve() {
        let data = synthetic_cifar10(8, 6, 3, 1);
        // augmentation ON so the resume has to restore the RNG stream
        // position exactly, not just the model
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            augment: true,
            ..TrainConfig::default()
        };
        let full = train_classifier(&resume_net(2), &data, cfg);
        assert!(!full.diverged);

        // halt mid-epoch-0 (3 of 4 batches) and mid-epoch-1 (batch 5)
        for halt in [3usize, 5] {
            let path = std::env::temp_dir().join(format!("qn_resume_cls_{halt}.qnckpt"));
            let interrupted = try_train_classifier(
                &resume_net(2),
                &data,
                cfg,
                &CheckpointSpec {
                    path: Some(path.clone()),
                    every_batches: 1,
                    resume: None,
                    halt_after_batches: Some(halt),
                },
            )
            .expect("interrupted run");
            assert!(interrupted.curve.len() < full.curve.len() || halt > 4);

            let resumed = try_train_classifier(
                &resume_net(7), // different init: weights must come from the file
                &data,
                cfg,
                &CheckpointSpec {
                    resume: Some(path.clone()),
                    ..CheckpointSpec::default()
                },
            )
            .expect("resumed run");
            assert_eq!(full.curve.len(), resumed.curve.len(), "halt {halt}");
            for (a, b) in full.curve.iter().zip(&resumed.curve) {
                assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "halt {halt}");
                assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits(), "halt {halt}");
            }
            assert_eq!(
                full.test_accuracy.to_bits(),
                resumed.test_accuracy.to_bits(),
                "halt {halt}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn data_parallel_resume_reproduces_uninterrupted_curve() {
        let data = synthetic_cifar10(8, 6, 3, 1);
        // fixed shard count so the run is reproducible on any host; the
        // sharded loop shares the classifier checkpoint logic, but the
        // gradient reduction and per-shard RNG streams are its own
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            augment: true,
            grad_shards: 2,
            ..TrainConfig::default()
        };
        let full = train_classifier(&resume_net(3), &data, cfg);
        assert!(!full.diverged);

        let path = std::env::temp_dir().join("qn_resume_shards.qnckpt");
        try_train_classifier(
            &resume_net(3),
            &data,
            cfg,
            &CheckpointSpec {
                path: Some(path.clone()),
                every_batches: 1,
                resume: None,
                halt_after_batches: Some(3),
            },
        )
        .expect("interrupted run");
        let resumed = try_train_classifier(
            &resume_net(11),
            &data,
            cfg,
            &CheckpointSpec {
                resume: Some(path.clone()),
                ..CheckpointSpec::default()
            },
        )
        .expect("resumed run");
        assert_eq!(full.curve.len(), resumed.curve.len());
        for (a, b) in full.curve.iter().zip(&resumed.curve) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
        assert_eq!(
            full.test_accuracy.to_bits(),
            resumed.test_accuracy.to_bits()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_wrong_kind_and_missing_file() {
        let data = synthetic_cifar10(8, 2, 1, 1);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            augment: false,
            ..TrainConfig::default()
        };
        let missing = CheckpointSpec {
            resume: Some(std::env::temp_dir().join("qn_resume_does_not_exist.qnckpt")),
            ..CheckpointSpec::default()
        };
        assert!(try_train_classifier(&resume_net(2), &data, cfg, &missing).is_err());

        // a transformer checkpoint is not a classifier checkpoint
        let path = std::env::temp_dir().join("qn_resume_wrong_kind.qnckpt");
        let tdata = TranslationDataset::generate(TranslationConfig {
            train_pairs: 8,
            test_pairs: 1,
            min_clauses: 1,
            max_clauses: 1,
            seed: 1,
        });
        let model = Transformer::new(TransformerConfig {
            src_vocab: tdata.src_vocab_len(),
            tgt_vocab: tdata.tgt_vocab_len(),
            d_model: 16,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            d_ff: 32,
            quadratic_rank: Some(3),
            max_len: 32,
            dropout: 0.0,
            seed: 3,
        });
        try_train_transformer(
            &model,
            &tdata,
            TransformerTrainConfig {
                epochs: 1,
                batch_size: 8,
                ..TransformerTrainConfig::default()
            },
            &CheckpointSpec {
                path: Some(path.clone()),
                every_batches: 1,
                ..CheckpointSpec::default()
            },
        )
        .expect("train transformer");
        let err = try_train_classifier(
            &resume_net(2),
            &data,
            cfg,
            &CheckpointSpec {
                resume: Some(path.clone()),
                ..CheckpointSpec::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("classifier"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transformer_resume_reproduces_uninterrupted_losses() {
        let data = TranslationDataset::generate(TranslationConfig {
            train_pairs: 24,
            test_pairs: 3,
            min_clauses: 1,
            max_clauses: 1,
            seed: 1,
        });
        let make = || {
            Transformer::new(TransformerConfig {
                src_vocab: data.src_vocab_len(),
                tgt_vocab: data.tgt_vocab_len(),
                d_model: 16,
                heads: 2,
                enc_layers: 1,
                dec_layers: 1,
                d_ff: 32,
                quadratic_rank: Some(3),
                max_len: 32,
                dropout: 0.0,
                seed: 3,
            })
        };
        let cfg = TransformerTrainConfig {
            epochs: 2,
            batch_size: 8,
            ..TransformerTrainConfig::default()
        };
        let full = train_transformer(&make(), &data, cfg);

        let path = std::env::temp_dir().join("qn_resume_tfm.qnckpt");
        // 24 pairs, batch 8 -> 3 steps/epoch; halt mid-epoch-1
        try_train_transformer(
            &make(),
            &data,
            cfg,
            &CheckpointSpec {
                path: Some(path.clone()),
                every_batches: 1,
                resume: None,
                halt_after_batches: Some(4),
            },
        )
        .expect("interrupted run");
        let resumed = try_train_transformer(
            &make(),
            &data,
            cfg,
            &CheckpointSpec {
                resume: Some(path.clone()),
                ..CheckpointSpec::default()
            },
        )
        .expect("resumed run");
        assert_eq!(full.losses.len(), resumed.losses.len());
        for (a, b) in full.losses.iter().zip(&resumed.losses) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(full.hypotheses, resumed.hypotheses);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transformer_training_reduces_loss() {
        let data = TranslationDataset::generate(TranslationConfig {
            train_pairs: 24,
            test_pairs: 3,
            min_clauses: 1,
            max_clauses: 1,
            seed: 1,
        });
        let model = Transformer::new(TransformerConfig {
            src_vocab: data.src_vocab_len(),
            tgt_vocab: data.tgt_vocab_len(),
            d_model: 16,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            d_ff: 32,
            quadratic_rank: Some(3),
            max_len: 32,
            dropout: 0.0,
            seed: 3,
        });
        let result = train_transformer(
            &model,
            &data,
            TransformerTrainConfig {
                epochs: 2,
                batch_size: 8,
                ..TransformerTrainConfig::default()
            },
        );
        assert_eq!(result.losses.len(), 2);
        assert!(result.losses[1] < result.losses[0]);
        assert_eq!(result.hypotheses.len(), 3);
    }
}
