use qn_autograd::Graph;
use qn_data::{augment_batch, DataLoader, ImageDataset, TranslationDataset};
use qn_metrics::accuracy;
use qn_models::{InferenceSession, ResNet, Transformer};
use qn_nn::{clip_grad_norm, Adam, AdamConfig, Module, NoamSchedule, Sgd, SgdConfig, StepDecay};
use qn_tensor::{BufferPool, Rng, Tensor};
use std::sync::Arc;

/// One epoch's training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss.
    pub loss: f32,
    /// Mean training accuracy.
    pub accuracy: f32,
}

/// Outcome of a classifier training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Per-epoch training statistics.
    pub curve: Vec<EpochStats>,
    /// Final test accuracy.
    pub test_accuracy: f32,
    /// `true` if the loss became non-finite (the Fig. 6 failure mode).
    pub diverged: bool,
}

/// The paper's CIFAR recipe scaled to CPU: SGD with momentum and weight
/// decay, step decay at 50%/75% of the epochs, pad-crop-flip augmentation,
/// and a dedicated low learning rate for the quadratic `Λᵏ` parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate (paper: 0.1).
    pub lr: f32,
    /// Learning rate for `Λᵏ` parameters (paper: 1e-4).
    pub lambda_lr: f32,
    /// Momentum (paper: 0.9).
    pub momentum: f32,
    /// Weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Apply pad-crop-flip augmentation.
    pub augment: bool,
    /// Global gradient-norm clip; `None` disables (the paper's recipe has no
    /// clipping — the Fig. 6 instability study needs it off).
    pub clip: Option<f32>,
    /// Shuffle / dropout seed.
    pub seed: u64,
    /// Data-parallel gradient-accumulation shards per step: each mini-batch
    /// is split into this many contiguous sub-batches whose forward/backward
    /// passes run concurrently on the `qn-parallel` pool, and whose
    /// gradients are then accumulated **in shard order**, so for a given
    /// shard count the loss curve and every gradient are bit-deterministic
    /// at any thread count. `0` means "one shard per pool thread"; `1` (the
    /// default) reproduces the single-graph step bit-for-bit.
    ///
    /// Shard counts > 1 follow standard unsynchronized data-parallel
    /// semantics: batch norm normalizes with **per-shard** batch statistics
    /// (there is no cross-shard stat sync), so the optimization trajectory
    /// differs slightly from the single-graph baseline, and the
    /// running-statistics updates — which only feed later inference, never
    /// the training gradients — are folded in pool-completion order.
    pub grad_shards: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 0.05,
            lambda_lr: 1e-4,
            momentum: 0.9,
            weight_decay: 1e-4,
            augment: true,
            clip: Some(5.0),
            seed: 0,
            grad_shards: 1,
        }
    }
}

/// One shard's contribution to a data-parallel training step.
struct ShardStep {
    /// Shard loss, already weighted by `shard_len / batch_len`.
    weighted_loss: f32,
    /// Shard accuracy, weighted by `shard_len`.
    weighted_hits: f32,
    /// `(parameter, gradient)` pairs from [`qn_autograd::Graph::backward_collect`].
    grads: Vec<(qn_autograd::Parameter, Tensor)>,
}

/// Forward/backward over `batch[lo..hi]`, returning weighted loss, weighted
/// accuracy and the collected (not yet accumulated) gradients.
fn shard_step(
    net: &ResNet,
    images: &Tensor,
    labels: &[usize],
    lo: usize,
    hi: usize,
    seed: u64,
    pool: &Arc<BufferPool>,
) -> ShardStep {
    let batch_len = labels.len() as f32;
    let shard_len = (hi - lo) as f32;
    // Pooled tape: the backward sweep reclaims intermediate activations and
    // spent gradients into the step-shared pool, and `recycle_into` below
    // returns the rest, so the next step's graph (and the GEMM packing
    // scratch) reuses this step's buffers instead of reallocating.
    let mut g = Graph::training_pooled(seed, Arc::clone(pool));
    let x = g.leaf(images.slice_axis(0, lo, hi));
    let logits = net.forward(&mut g, x);
    let shard_labels = &labels[lo..hi];
    // accuracy is read *before* backward: the pooled sweep reclaims the
    // logits buffer
    let shard_acc = accuracy(g.value(logits), shard_labels);
    let loss = g.softmax_cross_entropy(logits, shard_labels, 0.0);
    // Weight the shard's mean loss by its share of the batch so the summed
    // gradient equals the full-batch mean-loss gradient.
    let weighted = g.scale(loss, shard_len / batch_len);
    let weighted_loss = g.value(weighted).data()[0];
    if !weighted_loss.is_finite() {
        return ShardStep {
            weighted_loss,
            weighted_hits: 0.0,
            grads: Vec::new(),
        };
    }
    let grads = g.backward_collect(weighted);
    g.recycle_into(pool);
    ShardStep {
        weighted_loss,
        weighted_hits: shard_acc * shard_len,
        grads,
    }
}

/// Trains a ResNet classifier on an image dataset, returning the loss/acc
/// curve, final test accuracy and a divergence flag.
pub fn train_classifier(net: &ResNet, data: &ImageDataset, cfg: TrainConfig) -> TrainResult {
    let (lambda, other) = net.param_groups();
    let mut opt = Sgd::new(SgdConfig {
        lr: cfg.lr,
        momentum: cfg.momentum,
        weight_decay: cfg.weight_decay,
    });
    opt.add_group(other, None, None);
    if !lambda.is_empty() {
        opt.add_group(lambda, Some(cfg.lambda_lr), Some(0.0));
    }
    let schedule = StepDecay::new(vec![cfg.epochs / 2, cfg.epochs * 3 / 4], 0.1);
    let mut rng = Rng::seed_from(cfg.seed);
    let loader = DataLoader::new(&data.train_images, &data.train_labels, cfg.batch_size);
    let mut curve = Vec::with_capacity(cfg.epochs);
    let mut diverged = false;
    let mut step_seed = cfg.seed;

    let shards_cfg = if cfg.grad_shards == 0 {
        qn_parallel::num_threads()
    } else {
        cfg.grad_shards
    };
    // One pool for the whole run: step N+1's tapes draw from step N's
    // reclaimed buffers (values are unaffected — `pool_equivalence.rs`
    // asserts pooled and unpooled gradients are bit-identical).
    let pool = Arc::new(BufferPool::new());

    'epochs: for epoch in 0..cfg.epochs {
        let factor = schedule.factor(epoch);
        let mut loss_sum = 0.0f32;
        let mut acc_sum = 0.0f32;
        let mut batches = 0usize;
        for (images, labels) in loader.epoch(&mut rng) {
            let images = if cfg.augment {
                augment_batch(&images, 2, &mut rng)
            } else {
                images
            };
            step_seed = step_seed.wrapping_add(1);
            let batch_len = labels.len();
            let shards = shards_cfg.min(batch_len).max(1);
            let (loss_val, batch_acc) = if shards <= 1 {
                // Single-graph step: bit-for-bit the pre-sharding behaviour
                // (the pooled tape only changes where buffers come from).
                let mut g = Graph::training_pooled(step_seed, Arc::clone(&pool));
                let x = g.leaf(images);
                let logits = net.forward(&mut g, x);
                let loss = g.softmax_cross_entropy(logits, &labels, 0.0);
                let loss_val = g.value(loss).data()[0];
                // read before backward: the pooled sweep reclaims the logits
                let batch_acc = accuracy(g.value(logits), &labels);
                if loss_val.is_finite() {
                    g.backward(loss);
                }
                g.recycle_into(&pool);
                (loss_val, batch_acc)
            } else {
                // Data-parallel step: shard forward/backward passes run
                // concurrently, gradients accumulate in shard order below so
                // the reduction is deterministic at any thread count.
                let ranges = qn_parallel::split_evenly(batch_len, shards);
                let images_ref = &images;
                let labels_ref = labels.as_slice();
                let pool_ref = &pool;
                let steps = qn_parallel::par_map(ranges, |s, (lo, hi)| {
                    shard_step(
                        net,
                        images_ref,
                        labels_ref,
                        lo,
                        hi,
                        step_seed.wrapping_add(s as u64),
                        pool_ref,
                    )
                });
                let loss_val: f32 = steps.iter().map(|s| s.weighted_loss).sum();
                let hits: f32 = steps.iter().map(|s| s.weighted_hits).sum();
                if loss_val.is_finite() {
                    for step in &steps {
                        for (p, grad) in &step.grads {
                            p.accumulate_grad(grad);
                        }
                    }
                }
                (loss_val, hits / batch_len as f32)
            };
            if !loss_val.is_finite() {
                diverged = true;
                curve.push(EpochStats {
                    loss: f32::INFINITY,
                    accuracy: 0.0,
                });
                break 'epochs;
            }
            if let Some(max_norm) = cfg.clip {
                clip_grad_norm(&opt.params(), max_norm);
            }
            opt.step(factor);
            opt.zero_grad();
            loss_sum += loss_val;
            acc_sum += batch_acc;
            batches += 1;
        }
        curve.push(EpochStats {
            loss: loss_sum / batches.max(1) as f32,
            accuracy: acc_sum / batches.max(1) as f32,
        });
    }
    let test_accuracy = if diverged {
        0.0
    } else {
        evaluate_classifier(net, &data.test_images, &data.test_labels, cfg.batch_size)
    };
    TrainResult {
        curve,
        test_accuracy,
        diverged,
    }
}

/// Inference-mode accuracy of a classifier over a labelled set.
///
/// Runs on the tape-free path: one [`InferenceSession`] is reused across
/// all batches, so evaluation measures inference cost rather than autograd
/// bookkeeping.
pub fn evaluate_classifier(
    net: &ResNet,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> f32 {
    let loader = DataLoader::new(images, labels, batch_size);
    let mut session = InferenceSession::new(net);
    let mut correct_weighted = 0.0f32;
    let mut total = 0usize;
    for (batch, labs) in loader.batches() {
        let logits = session.predict_batch(&batch);
        correct_weighted += accuracy(&logits, &labs) * labs.len() as f32;
        total += labs.len();
    }
    correct_weighted / total.max(1) as f32
}

/// Configuration for transformer training (Table II recipe at CPU scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformerTrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Sentence pairs per batch.
    pub batch_size: usize,
    /// Label smoothing (paper: 0.1).
    pub label_smoothing: f32,
    /// Noam warmup steps.
    pub warmup: usize,
    /// Learning rate for `Λᵏ` parameters.
    pub lambda_lr: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TransformerTrainConfig {
    fn default() -> Self {
        TransformerTrainConfig {
            epochs: 8,
            batch_size: 16,
            label_smoothing: 0.1,
            warmup: 60,
            lambda_lr: 1e-4,
            seed: 0,
        }
    }
}

/// Outcome of a transformer training run.
#[derive(Debug, Clone)]
pub struct TransformerTrainResult {
    /// Per-epoch mean training loss.
    pub losses: Vec<f32>,
    /// Greedy-decoded hypotheses for the test set (detokenized).
    pub hypotheses: Vec<String>,
    /// Detokenized test references.
    pub references: Vec<String>,
}

/// Trains a transformer on the synthetic corpus with Adam + Noam warmup and
/// greedy-decodes the test set.
pub fn train_transformer(
    model: &Transformer,
    data: &TranslationDataset,
    cfg: TransformerTrainConfig,
) -> TransformerTrainResult {
    let (lambda, other) = model.param_groups();
    let mut opt = Adam::new(AdamConfig::default());
    opt.add_group(other, None);
    if !lambda.is_empty() {
        opt.add_group(lambda, Some(cfg.lambda_lr));
    }
    let sched = NoamSchedule::new(model.config().d_model, cfg.warmup);
    let mut rng = Rng::seed_from(cfg.seed);
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut step = 0usize;
    let pool = Arc::new(BufferPool::new());
    for _ in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..data.train.len()).collect();
        rng.shuffle(&mut order);
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            step += 1;
            let pairs: Vec<(&[usize], &[usize])> = chunk
                .iter()
                .map(|&i| {
                    let p = &data.train[i];
                    (p.source.as_slice(), p.target.as_slice())
                })
                .collect();
            let mut g =
                Graph::training_pooled(cfg.seed.wrapping_add(step as u64), Arc::clone(&pool));
            let loss = model.loss(&mut g, &pairs, cfg.label_smoothing);
            let lv = g.value(loss).data()[0];
            g.backward(loss);
            g.recycle_into(&pool);
            // Noam gives the absolute LR; Adam's base lr is folded out by
            // passing the schedule as a multiplier of lr=1e-3 default —
            // instead we normalize so the schedule IS the lr.
            let factor = sched.lr(step) / 1e-3;
            clip_grad_norm(&model.params(), 2.0);
            opt.step(factor);
            opt.zero_grad();
            loss_sum += lv;
            batches += 1;
        }
        losses.push(loss_sum / batches.max(1) as f32);
    }
    let max_len = data.max_len() + 4;
    let mut hypotheses = Vec::with_capacity(data.test.len());
    let mut references = Vec::with_capacity(data.test.len());
    for pair in &data.test {
        let out = model.greedy_decode(&pair.source, max_len);
        hypotheses.push(data.detokenize_target(&out));
        references.push(data.detokenize_target(&pair.target));
    }
    TransformerTrainResult {
        losses,
        hypotheses,
        references,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_core::NeuronSpec;
    use qn_data::{synthetic_cifar10, TranslationConfig};
    use qn_models::{NeuronPlacement, ResNetConfig, TransformerConfig};

    #[test]
    fn classifier_training_reduces_loss() {
        let data = synthetic_cifar10(8, 6, 3, 1);
        let net = ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
            placement: NeuronPlacement::All,
            seed: 2,
        });
        let result = train_classifier(
            &net,
            &data,
            TrainConfig {
                epochs: 2,
                batch_size: 16,
                augment: false,
                ..TrainConfig::default()
            },
        );
        assert!(!result.diverged);
        assert_eq!(result.curve.len(), 2);
        assert!(result.curve[1].loss < result.curve[0].loss + 0.1);
        assert!(result.test_accuracy >= 0.0 && result.test_accuracy <= 1.0);
    }

    #[test]
    fn data_parallel_training_is_deterministic_and_tracks_single_shard() {
        let data = synthetic_cifar10(8, 6, 3, 1);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            augment: false,
            ..TrainConfig::default()
        };
        let run = |shards: usize| {
            let net = ResNet::cifar(ResNetConfig {
                depth: 8,
                base_width: 4,
                num_classes: 10,
                neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
                placement: NeuronPlacement::All,
                seed: 2,
            });
            train_classifier(
                &net,
                &data,
                TrainConfig {
                    grad_shards: shards,
                    ..cfg
                },
            )
        };
        // For a given shard count the loss curve is bit-deterministic:
        // gradients accumulate in shard order, never in pool-completion
        // order, and training-mode batch norm never reads the (completion-
        // ordered) running statistics.
        let a = run(4);
        let b = run(4);
        assert!(!a.diverged && !b.diverged);
        assert_eq!(a.curve[0].loss.to_bits(), b.curve[0].loss.to_bits());
        // Sharded training uses per-shard batch-norm statistics
        // (unsynchronized data parallelism), so it tracks the single-graph
        // baseline closely but not exactly.
        let single = run(1);
        assert!(
            (a.curve[0].loss - single.curve[0].loss).abs() < 0.2,
            "sharded loss {} vs single-shard {}",
            a.curve[0].loss,
            single.curve[0].loss
        );
    }

    #[test]
    fn transformer_training_reduces_loss() {
        let data = TranslationDataset::generate(TranslationConfig {
            train_pairs: 24,
            test_pairs: 3,
            min_clauses: 1,
            max_clauses: 1,
            seed: 1,
        });
        let model = Transformer::new(TransformerConfig {
            src_vocab: data.src_vocab_len(),
            tgt_vocab: data.tgt_vocab_len(),
            d_model: 16,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            d_ff: 32,
            quadratic_rank: Some(3),
            max_len: 32,
            dropout: 0.0,
            seed: 3,
        });
        let result = train_transformer(
            &model,
            &data,
            TransformerTrainConfig {
                epochs: 2,
                batch_size: 8,
                ..TransformerTrainConfig::default()
            },
        );
        assert_eq!(result.losses.len(), 2);
        assert!(result.losses[1] < result.losses[0]);
        assert_eq!(result.hypotheses.len(), 3);
    }
}
