//! # qn-experiments
//!
//! Reproduction harnesses for every table and figure of the paper's
//! evaluation section. Each experiment is a binary in this crate
//! (`cargo run --release -p qn-experiments --bin <id>`); this library holds
//! the shared machinery:
//!
//! - [`TrainConfig`] / [`train_classifier`] — the paper's CIFAR training
//!   recipe (SGD + momentum + weight decay, step decay, pad-crop-flip
//!   augmentation, separate `Λᵏ` learning rate) at CPU-feasible scale.
//! - [`train_transformer`] — the Table II recipe (Adam + Noam warmup,
//!   label smoothing, greedy decoding for BLEU).
//! - [`Report`] — markdown emission into `results/`.
//!
//! Scale note: experiments default to laptop-quick settings; set `QN_FULL=1`
//! for the larger configurations recorded in `EXPERIMENTS.md`.

mod report;
mod train;

pub use report::Report;
pub use train::{
    evaluate_classifier, evaluate_classifier_session, train_classifier, train_transformer,
    try_train_classifier, try_train_transformer, CheckpointSpec, EpochStats, TrainConfig,
    TrainResult, TransformerTrainConfig, TransformerTrainResult,
};

/// `true` when the environment requests full-scale experiment settings.
pub fn full_scale() -> bool {
    std::env::var("QN_FULL").map(|v| v == "1").unwrap_or(false)
}
