//! Fig. 8: visualization of the linear response `wᵀx + b` and the quadratic
//! response `y₂ᵏ = xᵀQᵏΛᵏ(Qᵏ)ᵀx` of a trained first-layer quadratic
//! convolution, plus a frequency-energy statistic quantifying the paper's
//! observation that quadratic responses capture low-frequency shape.

use qn_core::NeuronSpec;
use qn_data::synthetic_cifar10;
use qn_experiments::{try_train_classifier, CheckpointSpec, Report, TrainConfig};
use qn_metrics::pgm::{low_frequency_fraction, write_pgm};
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;
use qn_tensor::{im2col, Conv2dSpec, Tensor};

const USAGE: &str = "usage: fig8 [--checkpoint <path> [--every <steps>]] [--resume <path>]";

fn checkpoint_spec() -> CheckpointSpec {
    match CheckpointSpec::parse_args(std::env::args().skip(1)) {
        Ok((spec, rest)) if rest.is_empty() => spec,
        Ok((_, rest)) => {
            eprintln!("fig8: unrecognised argument `{}`\n{USAGE}", rest[0]);
            std::process::exit(2);
        }
        Err(msg) => {
            eprintln!("fig8: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let spec = checkpoint_spec();
    let res = 16usize;
    let data = synthetic_cifar10(res, 30, 8, 61);
    let net = ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 8,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank: 9 },
        placement: NeuronPlacement::All,
        seed: 67,
    });
    let mut report = Report::new(
        "fig8",
        "Fig. 8 — linear vs quadratic response maps of a trained first layer",
    );
    let result = try_train_classifier(
        &net,
        &data,
        TrainConfig {
            epochs: 6,
            seed: 71,
            ..TrainConfig::default()
        },
        &spec,
    )
    .unwrap_or_else(|e| {
        eprintln!("fig8: checkpoint I/O failed: {e}");
        std::process::exit(1);
    });
    report.line(&format!(
        "ResNet-8 quadratic (k=9), trained 6 epochs, test acc {:.1}%. Maps are \
response magnitudes of the stem neuron with the strongest Λ (linear: |wᵀx+b|, \
quadratic: |y₂ᵏ|), so edge-sign oscillation registers as high-frequency content.\n",
        result.test_accuracy * 100.0
    ));
    // extract stem parameters (quad.q / quad.lambda / quad.w / quad.b of the
    // first conv): recompute responses directly from patches. The diagnostic
    // names are an invariant of the EfficientQuadratic family this binary
    // constructs above, so a miss is a bug, not an input error.
    let params = net.params();
    let find = |name: &str| {
        params
            .iter()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("EfficientQuadratic stem must expose '{name}'"))
    };
    let q = find("quad.q");
    let lam = find(qn_core::LAMBDA_PARAM_NAME);
    let w = find("quad.w");
    let b = find("quad.b");
    let (qv, lv, wv, bv) = (q.value(), lam.value(), w.value(), b.value());
    let (m, k) = lv.dims2();

    let spec = Conv2dSpec::new(3, 1, 1);
    // pick the stem neuron whose Λ row has the largest magnitude
    let neuron = (0..m)
        .max_by(|&a, &b| {
            let mag = |j: usize| -> f32 { (0..k).map(|i| lv.get(&[j, i]).abs()).sum() };
            mag(a)
                .partial_cmp(&mag(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);
    let mut rows = Vec::new();
    let mut lin_frac_sum = 0.0f32;
    let mut quad_frac_sum = 0.0f32;
    let images = 6usize;
    for img_idx in 0..images {
        let image = data.test_images.slice_axis(0, img_idx, img_idx + 1);
        let cols = im2col(&image, spec); // [res*res, 27]
        let mut linear_map = Tensor::zeros(&[res, res]);
        let mut quad_map = Tensor::zeros(&[res, res]);
        for pos in 0..res * res {
            let patch = cols.slice_axis(0, pos, pos + 1); // [1, n]
            let mut lin = bv.get(&[neuron]);
            for i in 0..patch.numel() {
                lin += wv.get(&[neuron, i]) * patch.data()[i];
            }
            let mut quad = 0.0f32;
            for ki in 0..k {
                let mut f = 0.0f32;
                for i in 0..patch.numel() {
                    f += qv.get(&[neuron * k + ki, i]) * patch.data()[i];
                }
                quad += lv.get(&[neuron, ki]) * f * f;
            }
            linear_map.set(&[pos / res, pos % res], lin.abs());
            quad_map.set(&[pos / res, pos % res], quad.abs());
        }
        let gray = {
            let mut t = Tensor::zeros(&[res, res]);
            for y in 0..res {
                for x in 0..res {
                    let v = (0..3).map(|c| image.get(&[0, c, y, x])).sum::<f32>() / 3.0;
                    t.set(&[y, x], v);
                }
            }
            t
        };
        let dir = std::path::Path::new("results");
        let _ = std::fs::create_dir_all(dir);
        let write = |map: &Tensor, kind: &str| {
            let path = dir.join(format!("fig8_{kind}_{img_idx}.pgm"));
            if let Err(e) = write_pgm(map, &path) {
                eprintln!("fig8: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        write(&gray, "input");
        write(&linear_map, "linear");
        write(&quad_map, "quadratic");
        let lf = low_frequency_fraction(&linear_map);
        let qf = low_frequency_fraction(&quad_map);
        lin_frac_sum += lf;
        quad_frac_sum += qf;
        rows.push(vec![
            format!("image {img_idx} (class {})", data.test_labels[img_idx]),
            format!("{:.3}", lf),
            format!("{:.3}", qf),
            if qf > lf {
                "quadratic smoother ✓".into()
            } else {
                "linear smoother".into()
            },
        ]);
    }
    report.table(
        &[
            "input",
            "linear low-freq fraction",
            "quadratic low-freq fraction",
            "verdict",
        ],
        &rows,
    );
    report.line(&format!(
        "\nMean low-frequency energy fraction: linear {:.3}, quadratic {:.3}. Paper shape to \
verify: the quadratic response concentrates on low-frequency (whole-object/shape) structure \
while the linear response is edge/texture dominated. PGM maps written to results/fig8_*.pgm.",
        lin_frac_sum / images as f32,
        quad_frac_sum / images as f32
    ));
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
