//! Fig. 8: visualization of the linear response `wᵀx + b` and the quadratic
//! response `y₂ᵏ = xᵀQᵏΛᵏ(Qᵏ)ᵀx` of a trained first-layer quadratic
//! convolution, plus a frequency-energy statistic quantifying the paper's
//! observation that quadratic responses capture low-frequency shape.

use qn_core::NeuronSpec;
use qn_data::synthetic_cifar10;
use qn_experiments::{train_classifier, Report, TrainConfig};
use qn_metrics::pgm::{low_frequency_fraction, write_pgm};
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;
use qn_tensor::{im2col, Conv2dSpec, Tensor};

fn main() {
    let res = 16usize;
    let data = synthetic_cifar10(res, 30, 8, 61);
    let net = ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 8,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank: 9 },
        placement: NeuronPlacement::All,
        seed: 67,
    });
    let mut report = Report::new(
        "fig8",
        "Fig. 8 — linear vs quadratic response maps of a trained first layer",
    );
    let result = train_classifier(
        &net,
        &data,
        TrainConfig {
            epochs: 6,
            seed: 71,
            ..TrainConfig::default()
        },
    );
    report.line(&format!(
        "ResNet-8 quadratic (k=9), trained 6 epochs, test acc {:.1}%. Maps are \
response magnitudes of the stem neuron with the strongest Λ (linear: |wᵀx+b|, \
quadratic: |y₂ᵏ|), so edge-sign oscillation registers as high-frequency content.\n",
        result.test_accuracy * 100.0
    ));
    // extract stem parameters (quad.q / quad.lambda / quad.w / quad.b of the
    // first conv): recompute responses directly from patches
    let params = net.params();
    let q = params
        .iter()
        .find(|p| p.name() == "quad.q")
        .expect("stem q");
    let lam = params
        .iter()
        .find(|p| p.name() == qn_core::LAMBDA_PARAM_NAME)
        .expect("stem lambda");
    let w = params
        .iter()
        .find(|p| p.name() == "quad.w")
        .expect("stem w");
    let b = params
        .iter()
        .find(|p| p.name() == "quad.b")
        .expect("stem b");
    let (qv, lv, wv, bv) = (q.value(), lam.value(), w.value(), b.value());
    let (m, k) = lv.dims2();

    let spec = Conv2dSpec::new(3, 1, 1);
    // pick the stem neuron whose Λ row has the largest magnitude
    let neuron = (0..m)
        .max_by(|&a, &b| {
            let mag = |j: usize| -> f32 { (0..k).map(|i| lv.get(&[j, i]).abs()).sum() };
            mag(a)
                .partial_cmp(&mag(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);
    let mut rows = Vec::new();
    let mut lin_frac_sum = 0.0f32;
    let mut quad_frac_sum = 0.0f32;
    let images = 6usize;
    for img_idx in 0..images {
        let image = data.test_images.slice_axis(0, img_idx, img_idx + 1);
        let cols = im2col(&image, spec); // [res*res, 27]
        let mut linear_map = Tensor::zeros(&[res, res]);
        let mut quad_map = Tensor::zeros(&[res, res]);
        for pos in 0..res * res {
            let patch = cols.slice_axis(0, pos, pos + 1); // [1, n]
            let mut lin = bv.get(&[neuron]);
            for i in 0..patch.numel() {
                lin += wv.get(&[neuron, i]) * patch.data()[i];
            }
            let mut quad = 0.0f32;
            for ki in 0..k {
                let mut f = 0.0f32;
                for i in 0..patch.numel() {
                    f += qv.get(&[neuron * k + ki, i]) * patch.data()[i];
                }
                quad += lv.get(&[neuron, ki]) * f * f;
            }
            linear_map.set(&[pos / res, pos % res], lin.abs());
            quad_map.set(&[pos / res, pos % res], quad.abs());
        }
        let gray = {
            let mut t = Tensor::zeros(&[res, res]);
            for y in 0..res {
                for x in 0..res {
                    let v = (0..3).map(|c| image.get(&[0, c, y, x])).sum::<f32>() / 3.0;
                    t.set(&[y, x], v);
                }
            }
            t
        };
        let dir = std::path::Path::new("results");
        let _ = std::fs::create_dir_all(dir);
        write_pgm(&gray, &dir.join(format!("fig8_input_{img_idx}.pgm"))).expect("write input");
        write_pgm(&linear_map, &dir.join(format!("fig8_linear_{img_idx}.pgm")))
            .expect("write linear");
        write_pgm(
            &quad_map,
            &dir.join(format!("fig8_quadratic_{img_idx}.pgm")),
        )
        .expect("write quad");
        let lf = low_frequency_fraction(&linear_map);
        let qf = low_frequency_fraction(&quad_map);
        lin_frac_sum += lf;
        quad_frac_sum += qf;
        rows.push(vec![
            format!("image {img_idx} (class {})", data.test_labels[img_idx]),
            format!("{:.3}", lf),
            format!("{:.3}", qf),
            if qf > lf {
                "quadratic smoother ✓".into()
            } else {
                "linear smoother".into()
            },
        ]);
    }
    report.table(
        &[
            "input",
            "linear low-freq fraction",
            "quadratic low-freq fraction",
            "verdict",
        ],
        &rows,
    );
    report.line(&format!(
        "\nMean low-frequency energy fraction: linear {:.3}, quadratic {:.3}. Paper shape to \
verify: the quadratic response concentrates on low-frequency (whole-object/shape) structure \
while the linear response is edge/texture dominated. PGM maps written to results/fig8_*.pgm.",
        lin_frac_sum / images as f32,
        quad_frac_sum / images as f32
    ));
    let path = report.save().expect("write report");
    println!("\nreport written to {}", path.display());
}
