//! Table I: per-neuron parameter/MAC complexity of every neuron family,
//! with the closed-form expressions cross-checked against the instrumented
//! costs of the actual layer implementations.

use qn_core::complexity::NeuronFamily;
use qn_core::neurons::{
    EfficientQuadraticLinear, FactorizedQuadraticLinear, GeneralQuadraticLinear, KervolutionLinear,
    LowRankQuadraticLinear, NoLinearQuadraticLinear, Quad1Linear, Quad2Linear,
};
use qn_experiments::Report;
use qn_nn::{Linear, Module};
use qn_tensor::Rng;

fn measured(family: NeuronFamily, n: usize, k: usize, rng: &mut Rng) -> (u64, u64) {
    // one neuron, batch 1: measured MACs from layer.costs, params from the
    // layer (biases excluded to match the paper's convention)
    let (layer, bias_params): (Box<dyn Module>, usize) = match family {
        NeuronFamily::Linear => (Box::new(Linear::new(n, 1, false, rng)), 0),
        NeuronFamily::General => (Box::new(GeneralQuadraticLinear::new(n, 1, rng)), 0),
        NeuronFamily::NoLinear => (Box::new(NoLinearQuadraticLinear::new(n, 1, rng)), 0),
        NeuronFamily::Factorized => (Box::new(FactorizedQuadraticLinear::new(n, 1, rng)), 0),
        NeuronFamily::LowRank => (Box::new(LowRankQuadraticLinear::new(n, 1, k, rng)), 0),
        NeuronFamily::Quad1 => (Box::new(Quad1Linear::new(n, 1, rng)), 0),
        NeuronFamily::Quad2 => (Box::new(Quad2Linear::new(n, 1, rng)), 0),
        NeuronFamily::Kervolution => (Box::new(KervolutionLinear::new(n, 1, 1.0, 3, rng)), 0),
        NeuronFamily::EfficientQuadratic => {
            (Box::new(EfficientQuadraticLinear::new(n, 1, k, rng)), 1)
        }
    };
    let params = (layer.param_count() - bias_params) as u64;
    let macs = layer.costs(&[1, n]).macs;
    (params, macs)
}

fn main() {
    let mut report = Report::new("table1", "Table I — neuron complexity summary");
    let mut rng = Rng::seed_from(0);
    report.line(
        "Closed-form per-neuron complexity (params / MACs / outputs), and the same \
quantities measured from the instrumented layer implementations. `per-out` is the cost \
amortized over the neuron's outputs (k+1 for ours, 1 elsewhere).\n",
    );
    for &(n, k) in &[(16usize, 3usize), (64, 9), (256, 9), (1024, 9)] {
        report.line(&format!("\n## n = {n}, k = {k}\n"));
        let mut rows = Vec::new();
        for family in NeuronFamily::all() {
            let c = family.complexity(n as u64, k as u64);
            let (mp, mm) = measured(family, n, k, &mut rng);
            let ok = mp == c.params && mm == c.macs;
            rows.push(vec![
                family.label().to_string(),
                c.params.to_string(),
                c.macs.to_string(),
                c.outputs.to_string(),
                format!("{:.2}", c.params_per_output()),
                format!("{:.2}", c.macs_per_output()),
                format!("{mp}/{mm} {}", if ok { "✓" } else { "✗ MISMATCH" }),
            ]);
        }
        report.table(
            &[
                "neuron",
                "params",
                "MACs",
                "outputs",
                "params/out",
                "MACs/out",
                "measured (p/m)",
            ],
            &rows,
        );
    }
    // headline claims
    let ours = NeuronFamily::EfficientQuadratic.complexity(256, 9);
    let lowrank = NeuronFamily::LowRank.complexity(256, 9);
    let linear = NeuronFamily::Linear.complexity(256, 9);
    report.line(&format!(
        "\nAt n=256, k=9: ours amortizes to {:.2} params/output vs linear {:.2} \
({:.2}% overhead) and vs [18]'s {:.2} ({:.1}x cheaper).",
        ours.params_per_output(),
        linear.params_per_output(),
        (ours.params_per_output() / linear.params_per_output() - 1.0) * 100.0,
        lowrank.params_per_output(),
        lowrank.params_per_output() / ours.params_per_output(),
    ));
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
