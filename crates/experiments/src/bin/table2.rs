//! Table II: Transformer machine translation — baseline vs quadratic
//! attention projections, BLEU under four evaluation settings and three
//! `Λᵏ` learning rates, plus parameter counts.
//!
//! The paper's quadratic Transformer matches/bests baseline BLEU with 20.3%
//! fewer parameters. Here the expressivity headroom is cashed in the same
//! way: the quadratic model uses a smaller `d_model`/`d_ff` than the linear
//! baseline and must reach at least its BLEU.

use qn_data::{TranslationConfig, TranslationDataset};
use qn_experiments::{
    full_scale, try_train_transformer, CheckpointSpec, Report, TransformerTrainConfig,
    TransformerTrainResult,
};
use qn_metrics::bleu::{corpus_bleu, Tokenization};
use qn_models::{Transformer, TransformerConfig};
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: table2 [--checkpoint <path> [--every <steps>]] [--resume <path>]";

/// `ck.qnckpt` + `baseline` → `ck.baseline.qnckpt`, so the four training
/// runs of this table keep separate checkpoint files from one `--checkpoint`
/// flag.
fn tagged(path: &Path, tag: &str) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("ckpt");
    match path.extension().and_then(|s| s.to_str()) {
        Some(ext) => path.with_file_name(format!("{stem}.{tag}.{ext}")),
        None => path.with_file_name(format!("{stem}.{tag}")),
    }
}

fn spec_for(base: &CheckpointSpec, tag: &str) -> CheckpointSpec {
    CheckpointSpec {
        path: base.path.as_deref().map(|p| tagged(p, tag)),
        resume: base.resume.as_deref().map(|p| tagged(p, tag)),
        ..base.clone()
    }
}

fn train_or_exit(
    model: &Transformer,
    data: &TranslationDataset,
    cfg: TransformerTrainConfig,
    spec: &CheckpointSpec,
) -> TransformerTrainResult {
    try_train_transformer(model, data, cfg, spec).unwrap_or_else(|e| {
        eprintln!("table2: checkpoint I/O failed: {e}");
        std::process::exit(1);
    })
}

fn eval_all(hyp: &[String], refs: &[String]) -> [f32; 4] {
    [
        corpus_bleu(hyp, refs, Tokenization::Thirteen, true),
        corpus_bleu(hyp, refs, Tokenization::Thirteen, false),
        corpus_bleu(hyp, refs, Tokenization::International, true),
        corpus_bleu(hyp, refs, Tokenization::International, false),
    ]
}

fn main() {
    let base_spec = match CheckpointSpec::parse_args(std::env::args().skip(1)) {
        Ok((spec, rest)) if rest.is_empty() => spec,
        Ok((_, rest)) => {
            eprintln!("table2: unrecognised argument `{}`\n{USAGE}", rest[0]);
            std::process::exit(2);
        }
        Err(msg) => {
            eprintln!("table2: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let full = full_scale();
    let (train_pairs, test_pairs, epochs) = if full { (500, 60, 10) } else { (240, 32, 8) };
    let data = TranslationDataset::generate(TranslationConfig {
        train_pairs,
        test_pairs,
        min_clauses: 1,
        max_clauses: 2,
        seed: 5,
    });
    let mut report = Report::new(
        "table2",
        "Table II — Transformer En→De(synthetic): BLEU and parameter cost",
    );
    report.line(&format!(
        "Synthetic corpus: {train_pairs} train / {test_pairs} test pairs, vocab \
{}→{}. Baseline: d_model 40, d_ff 80, 2+2 layers. Quadratic: d_model 32 (k=7, \
4 neurons/projection), d_ff 64 — the paper's ~20% parameter cut realized through \
expressivity. Λᵏ learning rates swept as in the paper (scaled to Adam's range).\n",
        data.src_vocab_len(),
        data.tgt_vocab_len()
    ));

    let base_cfg = TransformerConfig {
        src_vocab: data.src_vocab_len(),
        tgt_vocab: data.tgt_vocab_len(),
        d_model: 40,
        heads: 4,
        enc_layers: 2,
        dec_layers: 2,
        d_ff: 80,
        quadratic_rank: None,
        max_len: 40,
        dropout: 0.1,
        seed: 37,
    };
    let quad_cfg = TransformerConfig {
        d_model: 32,
        d_ff: 64,
        quadratic_rank: Some(7),
        ..base_cfg
    };

    let mut rows = Vec::new();
    let baseline = Transformer::new(base_cfg);
    let base_params = baseline.param_count();
    eprintln!("training baseline ({base_params} params)...");
    let bres = train_or_exit(
        &baseline,
        &data,
        TransformerTrainConfig {
            epochs,
            seed: 41,
            ..TransformerTrainConfig::default()
        },
        &spec_for(&base_spec, "baseline"),
    );
    let bb = eval_all(&bres.hypotheses, &bres.references);
    let base_final = bres.losses.last().copied().unwrap_or(f32::NAN);
    rows.push(vec![
        "baseline (linear)".into(),
        format!("{base_final:.3}"),
        format!("{:.2}", bb[0]),
        format!("{:.2}", bb[1]),
        format!("{:.2}", bb[2]),
        format!("{:.2}", bb[3]),
        format!("{:.3}M", base_params as f64 / 1e6),
    ]);
    eprintln!(
        "baseline BLEU(13a,cased) = {:.2}, final loss {base_final:.3}",
        bb[0]
    );

    let mut quad_params = 0usize;
    for lambda_lr in [1e-3f32, 1e-4, 1e-5] {
        let model = Transformer::new(quad_cfg);
        quad_params = model.param_count();
        eprintln!("training quadratic Λ-lr {lambda_lr:.0e} ({quad_params} params)...");
        let qres = train_or_exit(
            &model,
            &data,
            TransformerTrainConfig {
                epochs,
                lambda_lr,
                seed: 43,
                ..TransformerTrainConfig::default()
            },
            &spec_for(&base_spec, &format!("quad-lr{lambda_lr:.0e}")),
        );
        let qb = eval_all(&qres.hypotheses, &qres.references);
        rows.push(vec![
            format!("quadratic, Λ-lr {lambda_lr:.0e}"),
            format!("{:.3}", qres.losses.last().copied().unwrap_or(f32::NAN)),
            format!("{:.2}", qb[0]),
            format!("{:.2}", qb[1]),
            format!("{:.2}", qb[2]),
            format!("{:.2}", qb[3]),
            format!("{:.3}M", quad_params as f64 / 1e6),
        ]);
        eprintln!(
            "quadratic Λ-lr {lambda_lr:.0e}: BLEU(13a,cased) = {:.2}",
            qb[0]
        );
    }
    report.table(
        &[
            "model",
            "final loss",
            "BLEU 13a cased",
            "BLEU 13a uncased",
            "BLEU intl cased",
            "BLEU intl uncased",
            "#params",
        ],
        &rows,
    );
    let saving = 100.0 * (1.0 - quad_params as f64 / base_params as f64);
    report.line(&format!(
        "\nParameter saving of the quadratic model: {saving:.1}% (paper: 20.3%). Paper shape \
to verify: the quadratic Transformer reaches at least baseline BLEU at the reduced size, and \
uncased/international settings score no lower than cased/13a."
    ));
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
