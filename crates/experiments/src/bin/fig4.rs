//! Fig. 4: accuracy vs parameters and FLOPs for the ResNet family with
//! linear (base) and proposed quadratic neurons.
//!
//! Paper-scale parameter/MAC counts (width 16, 32×32 inputs) are computed
//! analytically from the cost models; accuracies are measured at a
//! CPU-feasible scale (set `QN_FULL=1` for the larger run).

use qn_core::NeuronSpec;
use qn_data::synthetic_cifar10;
use qn_experiments::{full_scale, train_classifier, Report, TrainConfig};
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;

fn main() {
    let full = full_scale();
    let depths: Vec<usize> = if full {
        vec![20, 32, 44, 56, 110]
    } else {
        vec![8, 20, 32]
    };
    let (res, per_class, test_per_class, epochs, width) = if full {
        (16, 60, 20, 12, 8)
    } else {
        (12, 50, 15, 8, 4)
    };

    let mut report = Report::new("fig4", "Fig. 4 — ResNet family: base vs proposed quadratic");
    report.line(&format!(
        "Measured at width {width}, {res}x{res} synthetic CIFAR-10 ({per_class}/class), \
{epochs} epochs. Paper-scale columns are analytic at width 16, 32x32 inputs.\n"
    ));
    let data = synthetic_cifar10(res, per_class, test_per_class, 7);
    let mut rows = Vec::new();
    for &depth in &depths {
        for (name, neuron) in [
            ("base", NeuronSpec::Linear),
            ("ours", NeuronSpec::EfficientQuadratic { rank: 9 }),
        ] {
            let cfg = ResNetConfig {
                depth,
                base_width: width,
                num_classes: 10,
                neuron,
                placement: NeuronPlacement::All,
                seed: 11,
            };
            let net = ResNet::cifar(cfg.clone());
            // paper-scale analytic costs
            let paper_net = ResNet::cifar(ResNetConfig {
                base_width: 16,
                ..cfg.clone()
            });
            let paper_params = paper_net.param_count();
            let paper_macs = paper_net.costs(&[1, 3, 32, 32]).macs;
            let start = std::time::Instant::now();
            let result = train_classifier(
                &net,
                &data,
                TrainConfig {
                    epochs,
                    seed: 13,
                    ..TrainConfig::default()
                },
            );
            rows.push(vec![
                format!("ResNet-{depth}"),
                name.to_string(),
                format!("{:.3}M", paper_params as f64 / 1e6),
                format!("{:.1}M", paper_macs as f64 / 1e6),
                format!("{:.1}%", result.test_accuracy * 100.0),
                format!(
                    "{:.1}%",
                    result.curve.last().map(|s| s.accuracy).unwrap_or(0.0) * 100.0
                ),
                format!("{:.0}s", start.elapsed().as_secs_f32()),
            ]);
            eprintln!("done: ResNet-{depth} {name}");
        }
    }
    report.table(
        &[
            "network",
            "neuron",
            "paper-scale params",
            "paper-scale MACs",
            "test acc",
            "train acc",
            "time",
        ],
        &rows,
    );
    // headline comparisons, mirroring the paper's annotations
    report.line(
        "\nPaper shape to verify: quadratic ResNet-d matches or beats the accuracy of a \
deeper linear baseline, so the same accuracy is reached with ~30-50% fewer parameters/MACs \
(paper: quad ResNet-32 > linear ResNet-44 at -29.3% params; quad ResNet-56 ≈ linear \
ResNet-110 at -49.8% params).",
    );
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
