//! Ablation: where should quadratic neurons go? The paper's Fig. 7 suggests
//! they matter in some layers and not others; this sweep compares all-layer
//! deployment against first-half, second-half and every-other placements,
//! plus post-training adaptive Λ pruning.

use qn_core::compress::{adaptive_rank_report, prune_lambda};
use qn_core::NeuronSpec;
use qn_data::synthetic_cifar10;
use qn_experiments::{evaluate_classifier, full_scale, train_classifier, Report, TrainConfig};
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;

fn main() {
    let full = full_scale();
    let (res, per_class, epochs, width, depth) = if full {
        (16, 60, 8, 6, 20)
    } else {
        (12, 40, 6, 4, 8)
    };
    let mut report = Report::new(
        "ablation_placement",
        "Ablation — quadratic-neuron placement across layers",
    );
    report.line(&format!(
        "ResNet-{depth} (width {width}) on synthetic CIFAR-10 at {res}x{res}, {epochs} epochs, \
k = 4. Conv layers are indexed in forward order (ResNet-{depth} has {} of them).\n",
        depth - 1
    ));
    let data = synthetic_cifar10(res, per_class, 15, 103);
    let convs = depth - 1;
    let placements: Vec<(String, NeuronPlacement)> = vec![
        ("all layers".into(), NeuronPlacement::All),
        ("first half".into(), NeuronPlacement::FirstN(convs / 2)),
        (
            "second half".into(),
            NeuronPlacement::Layers((convs / 2..convs).collect()),
        ),
        (
            "every other".into(),
            NeuronPlacement::Layers((0..convs).step_by(2).collect()),
        ),
        ("first layer only".into(), NeuronPlacement::FirstN(1)),
    ];
    let mut rows = Vec::new();
    for (name, placement) in placements {
        let net = ResNet::cifar(ResNetConfig {
            depth,
            base_width: width,
            num_classes: 10,
            neuron: NeuronSpec::EfficientQuadratic { rank: 4 },
            placement,
            seed: 107,
        });
        let result = train_classifier(
            &net,
            &data,
            TrainConfig {
                epochs,
                seed: 109,
                ..TrainConfig::default()
            },
        );
        // adaptive pruning: zero small Λ entries and re-evaluate
        let (lambda, _) = net.param_groups();
        let reports = adaptive_rank_report(&lambda, 1e-3);
        let mean_eff: f32 = if reports.is_empty() {
            0.0
        } else {
            reports.iter().map(|r| r.effective_rank).sum::<f32>() / reports.len() as f32
        };
        let pruned = prune_lambda(&lambda, 1e-3);
        let pruned_acc = evaluate_classifier(&net, &data.test_images, &data.test_labels, 32);
        rows.push(vec![
            name,
            format!("{}", net.param_count()),
            format!("{:.1}%", result.test_accuracy * 100.0),
            format!("{:.2}/4", mean_eff),
            format!("{pruned}"),
            format!("{:.1}%", pruned_acc * 100.0),
        ]);
    }
    report.table(
        &[
            "placement",
            "params",
            "test acc",
            "mean effective rank",
            "Λ pruned (|λ|≤1e-3)",
            "acc after pruning",
        ],
        &rows,
    );
    report.line(
        "\nShape to verify: all-layer deployment is at least as good as partial \
placements (the paper argues first-layer-only deployment [14,17] is suboptimal), and pruning \
near-zero Λ entries costs little accuracy — quadratic capacity is unevenly used across depth.",
    );
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
