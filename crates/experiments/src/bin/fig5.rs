//! Fig. 5: the proposed neuron vs prior quadratic neurons — Quad-1 (Fan et
//! al. \[19\]) and Quad-2 (Xu et al. / QuadraLib \[21\]) — on the ResNet family.

use qn_core::NeuronSpec;
use qn_data::synthetic_cifar10;
use qn_experiments::{full_scale, train_classifier, Report, TrainConfig};
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;

fn main() {
    let full = full_scale();
    let depths: Vec<usize> = if full { vec![20, 32, 56] } else { vec![8, 20] };
    let (res, per_class, test_per_class, epochs, width) = if full {
        (16, 60, 20, 12, 8)
    } else {
        (12, 50, 15, 8, 4)
    };

    let mut report = Report::new(
        "fig5",
        "Fig. 5 — proposed neuron vs Quad-1 [19] and Quad-2 [21]",
    );
    report.line(&format!(
        "Measured at width {width}, {res}x{res} synthetic CIFAR-10, {epochs} epochs. \
Paper-scale columns analytic at width 16, 32x32.\n"
    ));
    let data = synthetic_cifar10(res, per_class, test_per_class, 7);
    let mut rows = Vec::new();
    for &depth in &depths {
        // product-form neurons (w₁ᵀx)(w₂ᵀx) still profit from a smaller
        // step size — tuned in their favor
        for (name, neuron, lr) in [
            ("quad-1 [19]", NeuronSpec::Quad1, 0.02),
            ("quad-2 [21]", NeuronSpec::Quad2, 0.02),
            ("ours", NeuronSpec::EfficientQuadratic { rank: 9 }, 0.05),
        ] {
            let cfg = ResNetConfig {
                depth,
                base_width: width,
                num_classes: 10,
                neuron,
                placement: NeuronPlacement::All,
                seed: 17,
            };
            let net = ResNet::cifar(cfg.clone());
            let paper_net = ResNet::cifar(ResNetConfig {
                base_width: 16,
                ..cfg.clone()
            });
            let paper_params = paper_net.param_count();
            let paper_macs = paper_net.costs(&[1, 3, 32, 32]).macs;
            let result = train_classifier(
                &net,
                &data,
                TrainConfig {
                    epochs,
                    lr,
                    seed: 19,
                    ..TrainConfig::default()
                },
            );
            rows.push(vec![
                format!("ResNet-{depth}"),
                name.to_string(),
                format!("{:.3}M", paper_params as f64 / 1e6),
                format!("{:.1}M", paper_macs as f64 / 1e6),
                format!("{:.1}%", result.test_accuracy * 100.0),
                format!("{}", if result.diverged { "diverged" } else { "ok" }),
            ]);
            eprintln!("done: ResNet-{depth} {name}");
        }
    }
    report.table(
        &[
            "network",
            "neuron",
            "paper-scale params",
            "paper-scale MACs",
            "test acc",
            "status",
        ],
        &rows,
    );
    report.line(
        "\nPaper shape to verify: at matched depth, ours reaches at least the accuracy \
of quad-1/quad-2 with ~24% fewer parameters and MACs (the 3n-per-output cost of [19]/[21] vs \
our n + k/(k+1)); [21] degrades on deeper networks.",
    );
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
