//! Ablation: the paper's §III-B contribution — reusing the intermediate
//! features fᵏ as outputs — vs the same neuron emitting only the scalar y.

use qn_core::NeuronSpec;
use qn_data::synthetic_cifar10;
use qn_experiments::{full_scale, train_classifier, Report, TrainConfig};
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;

fn main() {
    let full = full_scale();
    let (res, per_class, epochs, width, depth) = if full {
        (16, 60, 8, 6, 20)
    } else {
        (12, 40, 5, 4, 8)
    };
    let mut report = Report::new(
        "ablation_vectorized",
        "Ablation — vectorized output (fᵏ reuse) vs scalar-output quadratic neuron",
    );
    report.line(&format!(
        "ResNet-{depth} (width {width}) on synthetic CIFAR-10 at {res}x{res}, {epochs} epochs, \
k = 4. Both nets produce the same feature-map widths; the scalar variant needs (k+1)x more \
neurons (and parameters) to do so.\n"
    ));
    let data = synthetic_cifar10(res, per_class, 15, 89);
    let mut rows = Vec::new();
    for (name, neuron) in [
        (
            "vectorized {y, fᵏ} (ours)",
            NeuronSpec::EfficientQuadratic { rank: 4 },
        ),
        (
            "scalar y only",
            NeuronSpec::EfficientQuadraticScalar { rank: 4 },
        ),
        ("linear baseline", NeuronSpec::Linear),
    ] {
        let net = ResNet::cifar(ResNetConfig {
            depth,
            base_width: width,
            num_classes: 10,
            neuron,
            placement: NeuronPlacement::All,
            seed: 97,
        });
        let result = train_classifier(
            &net,
            &data,
            TrainConfig {
                epochs,
                seed: 101,
                ..TrainConfig::default()
            },
        );
        rows.push(vec![
            name.to_string(),
            format!("{}", net.param_count()),
            format!("{}", net.costs(&[1, 3, res, res]).macs),
            format!("{:.1}%", result.test_accuracy * 100.0),
        ]);
        eprintln!("done: {name}");
    }
    report.table(&["neuron", "net params", "net MACs", "test acc"], &rows);
    report.line(
        "\nShape to verify: the vectorized form reaches comparable or better accuracy \
than the scalar form at a fraction of its parameters/MACs — the fᵏ features carry usable \
information (paper §III-B).",
    );
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
