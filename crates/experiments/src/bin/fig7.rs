//! Fig. 7: distribution of linear vs quadratic (Λᵏ) parameters per layer of
//! a ResNet-20 trained on synthetic CIFAR-100.

use qn_core::NeuronSpec;
use qn_data::synthetic_cifar100;
use qn_experiments::{full_scale, train_classifier, Report, TrainConfig};
use qn_metrics::stats::summarize;
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};

fn main() {
    let full = full_scale();
    let (res, per_class, epochs, width, depth) = if full {
        (16, 10, 8, 6, 20)
    } else {
        (12, 8, 6, 4, 14)
    };
    let mut report = Report::new(
        "fig7",
        "Fig. 7 — per-layer parameter distributions after training (synthetic CIFAR-100)",
    );
    report.line(&format!(
        "ResNet-{depth} (width {width}), 100 classes, {per_class}/class at {res}x{res}, \
{epochs} epochs, k = 9 truncated to patch length where needed.\n"
    ));
    let data = synthetic_cifar100(res, per_class, 2, 47);
    let net = ResNet::cifar(ResNetConfig {
        depth,
        base_width: width,
        num_classes: 100,
        neuron: NeuronSpec::EfficientQuadratic { rank: 9 },
        placement: NeuronPlacement::All,
        seed: 53,
    });
    let result = train_classifier(
        &net,
        &data,
        TrainConfig {
            epochs,
            seed: 59,
            ..TrainConfig::default()
        },
    );
    report.line(&format!(
        "final train acc {:.1}%, test acc {:.1}%\n",
        result
            .curve
            .last()
            .map(|s| s.accuracy * 100.0)
            .unwrap_or(0.0),
        result.test_accuracy * 100.0
    ));
    let mut rows = Vec::new();
    let mut lambda_spreads = Vec::new();
    for (layer, (lin, lam)) in net.layer_parameter_snapshots().iter().enumerate() {
        let ls = summarize(lin);
        let qs = summarize(lam);
        lambda_spreads.push(qs.p95 - qs.p5);
        rows.push(vec![
            format!("{}", layer + 1),
            format!("[{:+.3}, {:+.3}]", ls.p5, ls.p95),
            format!("{:.3}", ls.std),
            format!("[{:+.4}, {:+.4}]", qs.p5, qs.p95),
            format!("{:.4}", qs.std),
        ]);
    }
    report.table(
        &[
            "layer",
            "linear p5–p95",
            "linear std",
            "quadratic Λ p5–p95",
            "quadratic Λ std",
        ],
        &rows,
    );
    let max_spread = lambda_spreads.iter().cloned().fold(0.0f32, f32::max);
    let min_spread = lambda_spreads.iter().cloned().fold(f32::INFINITY, f32::min);
    report.line(&format!(
        "\nΛ spread varies {:.1}x across depth (min {:.4}, max {:.4}). Paper shape to verify: \
quadratic parameters have much larger variance-of-spread across layers than linear ones — \
significant in some layers, near-zero in others — suggesting quadratic neurons are not \
equally needed at every depth (and first-layer-only deployment is not optimal either).",
        max_spread / min_spread.max(1e-9),
        min_spread,
        max_spread
    ));
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
