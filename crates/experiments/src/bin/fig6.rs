//! Fig. 6: training stability of ResNet-18 with kervolutional neurons
//! (KNN-n: first n conv layers use the polynomial kernel of Wang et al.
//! \[14\]) vs the proposed quadratic neuron in all layers.

use qn_autograd::Graph;
use qn_core::NeuronSpec;
use qn_data::synthetic_imagenet;
use qn_experiments::{full_scale, train_classifier, Report, TrainConfig};
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;

fn main() {
    let full = full_scale();
    let (res, per_class, test_per_class, epochs, width, degree) = if full {
        (16, 40, 10, 8, 4, 9)
    } else {
        (12, 20, 8, 5, 4, 9)
    };
    let mut report = Report::new(
        "fig6",
        "Fig. 6 — training stability: KNN-n [14] vs proposed neuron (all layers)",
    );
    report.line(&format!(
        "ResNet-18 (width {width}) on 20-class synthetic ImageNet ({res}x{res}, \
{per_class}/class), polynomial degree p={degree}, {epochs} epochs. The paper observes \
KNN-3 trains stably while KNN-11/KNN-15 fluctuate or diverge; ours is stable in all layers.\n"
    ));
    let data = synthetic_imagenet(res, per_class, test_per_class, 23);
    let mut rows = Vec::new();
    let configs: Vec<(String, NeuronSpec, NeuronPlacement)> = vec![
        (
            "ours (all layers)".into(),
            NeuronSpec::EfficientQuadratic { rank: 9 },
            NeuronPlacement::All,
        ),
        (
            "KNN-3".into(),
            NeuronSpec::Kervolution {
                degree,
                offset: 0.5,
            },
            NeuronPlacement::FirstN(3),
        ),
        (
            "KNN-7".into(),
            NeuronSpec::Kervolution {
                degree,
                offset: 0.5,
            },
            NeuronPlacement::FirstN(7),
        ),
        (
            "KNN-11".into(),
            NeuronSpec::Kervolution {
                degree,
                offset: 0.5,
            },
            NeuronPlacement::FirstN(11),
        ),
        (
            "KNN-15".into(),
            NeuronSpec::Kervolution {
                degree,
                offset: 0.5,
            },
            NeuronPlacement::FirstN(15),
        ),
    ];
    for (name, neuron, placement) in configs {
        let net = ResNet::imagenet18(ResNetConfig {
            depth: 18,
            base_width: width,
            num_classes: 20,
            neuron,
            placement,
            seed: 29,
        });
        let result = train_classifier(
            &net,
            &data,
            TrainConfig {
                epochs,
                lr: 0.1,
                seed: 31,
                clip: None, // the paper's recipe has no gradient clipping
                ..TrainConfig::default()
            },
        );
        // the paper's "extreme values during testing": largest |logit| on
        // the test set grows with kervolutional depth
        let (max_logit, test_unstable) = {
            let mut g = Graph::new();
            let x = g.leaf(
                data.test_images
                    .slice_axis(0, 0, data.test_labels.len().min(64)),
            );
            let y = net.forward(&mut g, x);
            let unstable = g.value(y).has_non_finite();
            (g.value(y).map(f32::abs).max(), unstable)
        };
        let losses: Vec<String> = result
            .curve
            .iter()
            .map(|s| {
                if s.loss.is_finite() {
                    format!("{:.2}", s.loss)
                } else {
                    "∞".into()
                }
            })
            .collect();
        // instability score: max epoch-to-epoch loss increase
        let mut worst_jump = 0.0f32;
        for w in result.curve.windows(2) {
            if w[0].loss.is_finite() && w[1].loss.is_finite() {
                worst_jump = worst_jump.max(w[1].loss - w[0].loss);
            }
        }
        rows.push(vec![
            name.clone(),
            losses.join(" → "),
            format!("{:.1}%", result.test_accuracy * 100.0),
            format!("{:.2}", worst_jump),
            if test_unstable {
                "NaN".into()
            } else {
                format!("{max_logit:.1}")
            },
            if result.diverged {
                "DIVERGED (train)".into()
            } else if test_unstable {
                "UNSTABLE (inference)".into()
            } else {
                "stable".into()
            },
        ]);
        eprintln!("done: {name}");
    }
    report.table(
        &[
            "configuration",
            "train loss per epoch",
            "test acc",
            "worst loss jump",
            "max |test logit|",
            "status",
        ],
        &rows,
    );
    report.line(
        "\nPaper shape to verify: instability (loss jumps or divergence) grows with the \
number of kervolutional layers, while the proposed neuron trains stably when deployed in \
every layer.",
    );
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
