//! Ablation: effect of the decomposition rank k (the paper fixes k = 9 but
//! highlights that, unlike \[18\], cost does not grow with k — so higher k
//! buys expressivity nearly for free).

use qn_core::complexity::NeuronFamily;
use qn_core::NeuronSpec;
use qn_data::synthetic_cifar10;
use qn_experiments::{full_scale, train_classifier, Report, TrainConfig};
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;

fn main() {
    let full = full_scale();
    let (res, per_class, epochs, width, depth) = if full {
        (16, 60, 8, 6, 20)
    } else {
        (12, 40, 5, 4, 8)
    };
    let mut report = Report::new("ablation_rank", "Ablation — decomposition rank k");
    report.line(&format!(
        "ResNet-{depth} (width {width}) on synthetic CIFAR-10 at {res}x{res}, {epochs} epochs.\n"
    ));
    let data = synthetic_cifar10(res, per_class, 15, 73);
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 9] {
        let net = ResNet::cifar(ResNetConfig {
            depth,
            base_width: width,
            num_classes: 10,
            neuron: NeuronSpec::EfficientQuadratic { rank: k },
            placement: NeuronPlacement::All,
            seed: 79,
        });
        let c = NeuronFamily::EfficientQuadratic.complexity(108, k as u64);
        let result = train_classifier(
            &net,
            &data,
            TrainConfig {
                epochs,
                seed: 83,
                ..TrainConfig::default()
            },
        );
        rows.push(vec![
            format!("k = {k}"),
            format!("{:.2}", c.params_per_output()),
            format!("{}", net.param_count()),
            format!("{}", net.costs(&[1, 3, res, res]).macs),
            format!("{:.1}%", result.test_accuracy * 100.0),
        ]);
        eprintln!("done: k={k}");
    }
    report.table(
        &[
            "rank",
            "params/output (n=108)",
            "net params",
            "net MACs",
            "test acc",
        ],
        &rows,
    );
    report.line(
        "\nShape to verify: per-output cost is nearly flat in k (Table I), so larger k \
is affordable; accuracy should be no worse (typically better) at k = 9 than k = 1.",
    );
    let path = report.save_or_exit();
    println!("\nreport written to {}", path.display());
}
