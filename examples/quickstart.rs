//! Quickstart: train a tiny classifier built from efficient quadratic
//! neurons on a task where second-order features are essential — telling
//! apart two point clouds with equal means but different covariance
//! structure (a linear model cannot beat chance here).
//!
//! Run with: `cargo run --release --example quickstart`

use quadranet::autograd::Graph;
use quadranet::core::neurons::EfficientQuadraticLinear;
use quadranet::metrics::accuracy;
use quadranet::nn::{Linear, Module, Sgd, SgdConfig};
use quadranet::tensor::{Rng, Tensor};

/// class 0: x ~ N(0, I); class 1: x ~ N(0, diag(4, 0.25, …)) — same mean,
/// different second moments.
fn sample(n: usize, rng: &mut Rng) -> (Tensor, Vec<usize>) {
    let dim = 8;
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        for d in 0..dim {
            let scale = if class == 0 {
                1.0
            } else if d % 2 == 0 {
                2.0
            } else {
                0.5
            };
            data.push(rng.normal() * scale);
        }
        labels.push(class);
    }
    (
        Tensor::from_vec(data, &[n, dim]).expect("sizes consistent"),
        labels,
    )
}

fn main() {
    let mut rng = Rng::seed_from(7);
    let (train_x, train_y) = sample(512, &mut rng);
    let (test_x, test_y) = sample(256, &mut rng);

    // a single layer of 4 quadratic neurons (rank 3 → 16 outputs) + readout
    let quad = EfficientQuadraticLinear::new(8, 4, 3, &mut rng);
    let head = Linear::new(quad.out_features(), 2, true, &mut rng);
    let mut opt = Sgd::new(SgdConfig {
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
    });
    let (lambda, other) = quadranet::core::split_lambda_params(
        quad.params().into_iter().chain(head.params()).collect(),
    );
    opt.add_group(other, None, None);
    opt.add_group(lambda, Some(5e-2), Some(0.0));

    for epoch in 0..60 {
        let mut g = Graph::training(epoch as u64);
        let x = g.leaf(train_x.clone());
        let h = quad.forward(&mut g, x);
        let h = g.relu(h);
        let logits = head.forward(&mut g, h);
        let loss = g.softmax_cross_entropy(logits, &train_y, 0.0);
        let lv = g.value(loss).data()[0];
        g.backward(loss);
        opt.step(1.0);
        opt.zero_grad();
        if epoch % 20 == 0 {
            println!("epoch {epoch:>2}: loss {lv:.4}");
        }
    }

    let mut g = Graph::new();
    let x = g.leaf(test_x);
    let h = quad.forward(&mut g, x);
    let h = g.relu(h);
    let logits = head.forward(&mut g, h);
    let acc = accuracy(g.value(logits), &test_y);
    println!("test accuracy: {:.1}% (chance = 50%)", acc * 100.0);
    println!(
        "quadratic layer: {} params for {} outputs (amortized {:.2}/output)",
        quad.param_count(),
        quad.out_features(),
        quad.param_count() as f64 / quad.out_features() as f64
    );
    assert!(
        acc > 0.75,
        "quadratic neurons should solve the covariance task"
    );
}
