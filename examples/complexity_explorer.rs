//! Interactive Table-I explorer: prints the parameter/MAC cost of every
//! neuron family for a chosen input width `n` and rank `k`.
//!
//! Run with: `cargo run --release --example complexity_explorer -- 256 9`

use quadranet::core::complexity::NeuronFamily;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u64 = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(256);
    let k: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(9);
    println!("neuron complexity at n = {n}, k = {k}\n");
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "family", "params", "MACs", "outputs", "params/out", "MACs/out"
    );
    for family in NeuronFamily::all() {
        let c = family.complexity(n, k);
        println!(
            "{:<18} {:>10} {:>10} {:>8} {:>12.2} {:>12.2}",
            family.label(),
            c.params,
            c.macs,
            c.outputs,
            c.params_per_output(),
            c.macs_per_output()
        );
    }
    let ours = NeuronFamily::EfficientQuadratic.complexity(n, k);
    let linear = NeuronFamily::Linear.complexity(n, k);
    println!(
        "\nproposed neuron overhead over linear, per output: {:.3}%",
        (ours.params_per_output() / linear.params_per_output() - 1.0) * 100.0
    );
}
