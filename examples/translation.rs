//! Machine translation with quadratic attention projections: trains a tiny
//! Transformer on the synthetic language pair and prints BLEU plus sample
//! translations.
//!
//! Run with: `cargo run --release --example translation`

use quadranet::data::{TranslationConfig, TranslationDataset};
use quadranet::experiments::{train_transformer, TransformerTrainConfig};
use quadranet::metrics::bleu::{corpus_bleu, Tokenization};
use quadranet::models::{Transformer, TransformerConfig};

fn main() {
    let data = TranslationDataset::generate(TranslationConfig {
        train_pairs: 150,
        test_pairs: 16,
        min_clauses: 1,
        max_clauses: 1,
        seed: 11,
    });
    let model = Transformer::new(TransformerConfig {
        src_vocab: data.src_vocab_len(),
        tgt_vocab: data.tgt_vocab_len(),
        d_model: 32,
        heads: 2,
        enc_layers: 1,
        dec_layers: 1,
        d_ff: 64,
        quadratic_rank: Some(7), // 4 quadratic neurons per projection
        max_len: 32,
        dropout: 0.0,
        seed: 13,
    });
    println!("quadratic transformer: {} parameters", model.param_count());
    let result = train_transformer(
        &model,
        &data,
        TransformerTrainConfig {
            epochs: 5,
            batch_size: 16,
            ..TransformerTrainConfig::default()
        },
    );
    println!("training losses: {:?}", result.losses);
    let bleu = corpus_bleu(
        &result.hypotheses,
        &result.references,
        Tokenization::Thirteen,
        true,
    );
    println!("BLEU (13a, cased): {bleu:.2}");
    for i in 0..3.min(result.hypotheses.len()) {
        println!("  ref: {}", result.references[i]);
        println!("  hyp: {}\n", result.hypotheses[i]);
    }
}
