//! Fig.-8-style visualization: renders the linear and quadratic responses
//! of a (briefly trained) quadratic convolution as PGM images under
//! `results/example_responses/`.
//!
//! Run with: `cargo run --release --example response_visualization`

use quadranet::autograd::Graph;
use quadranet::core::neurons::EfficientQuadraticConv2d;
use quadranet::data::synthetic_cifar10;
use quadranet::metrics::pgm::{low_frequency_fraction, write_pgm};
use quadranet::nn::Module;
use quadranet::tensor::{im2col, Conv2dSpec, Rng, Tensor};

fn main() -> std::io::Result<()> {
    let mut rng = Rng::seed_from(3);
    let data = synthetic_cifar10(16, 10, 4, 3);
    let spec = Conv2dSpec::new(3, 1, 1);
    let conv = EfficientQuadraticConv2d::efficient(3, 2, 9, spec, &mut rng);

    // one forward pass just to show the layer runs; responses are computed
    // from the raw factors below
    let mut g = Graph::new();
    let x = g.leaf(data.test_images.slice_axis(0, 0, 1));
    let y = conv.forward(&mut g, x);
    println!("conv output shape: {:?}", g.value(y).shape().dims());

    let dir = std::path::Path::new("results/example_responses");
    std::fs::create_dir_all(dir)?;
    let inner = conv.inner();
    let params = inner.params();
    let q = params.iter().find(|p| p.name() == "quad.q").expect("q");
    let lam = params
        .iter()
        .find(|p| p.name() == quadranet::core::LAMBDA_PARAM_NAME)
        .expect("lambda");
    let w = params.iter().find(|p| p.name() == "quad.w").expect("w");
    let (qv, lv, wv) = (q.value(), lam.value(), w.value());
    let k = inner.rank();

    for img_idx in 0..2 {
        let image = data.test_images.slice_axis(0, img_idx, img_idx + 1);
        let cols = im2col(&image, spec);
        let res = 16;
        let mut linear_map = Tensor::zeros(&[res, res]);
        let mut quad_map = Tensor::zeros(&[res, res]);
        for pos in 0..res * res {
            let patch = cols.slice_axis(0, pos, pos + 1);
            let mut lin = 0.0f32;
            for i in 0..patch.numel() {
                lin += wv.get(&[0, i]) * patch.data()[i];
            }
            let mut quad = 0.0f32;
            for ki in 0..k {
                let mut f = 0.0f32;
                for i in 0..patch.numel() {
                    f += qv.get(&[ki, i]) * patch.data()[i];
                }
                quad += lv.get(&[0, ki]) * f * f;
            }
            linear_map.set(&[pos / res, pos % res], lin);
            quad_map.set(&[pos / res, pos % res], quad);
        }
        write_pgm(&linear_map, &dir.join(format!("linear_{img_idx}.pgm")))?;
        write_pgm(&quad_map, &dir.join(format!("quadratic_{img_idx}.pgm")))?;
        println!(
            "image {img_idx}: low-frequency fraction linear {:.3}, quadratic {:.3}",
            low_frequency_fraction(&linear_map),
            low_frequency_fraction(&quad_map)
        );
    }
    println!("PGM maps written to {}", dir.display());
    Ok(())
}
