//! Image classification with pluggable neurons: trains the same small
//! ResNet with linear and with efficient quadratic convolutions on
//! synthetic CIFAR-10 and compares accuracy and cost.
//!
//! Run with: `cargo run --release --example image_classification`

use quadranet::core::NeuronSpec;
use quadranet::data::synthetic_cifar10;
use quadranet::experiments::{train_classifier, TrainConfig};
use quadranet::models::{NeuronPlacement, ResNet, ResNetConfig};
use quadranet::nn::Module;

fn main() {
    let data = synthetic_cifar10(12, 30, 10, 3);
    println!(
        "synthetic CIFAR-10: {} train / {} test images at 12x12\n",
        data.train_len(),
        data.test_len()
    );
    for (name, neuron) in [
        ("linear", NeuronSpec::Linear),
        ("quadratic k=3", NeuronSpec::EfficientQuadratic { rank: 3 }),
    ] {
        let net = ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron,
            placement: NeuronPlacement::All,
            seed: 5,
        });
        let result = train_classifier(
            &net,
            &data,
            TrainConfig {
                epochs: 4,
                seed: 9,
                ..TrainConfig::default()
            },
        );
        println!(
            "{name:>14}: params {:>6}, MACs {:>9}, test acc {:.1}%, final loss {:.3}",
            net.param_count(),
            net.costs(&[1, 3, 12, 12]).macs,
            result.test_accuracy * 100.0,
            result.curve.last().map(|s| s.loss).unwrap_or(f32::NAN),
        );
    }
}
